"""Virtual GPU cluster substrate.

Stands in for the Summit supercomputer of the paper's evaluation:

* :mod:`repro.parallel.topology` — node/GPU layout (6 GPUs per node) and
  the logical 2-D tile mesh.
* :mod:`repro.parallel.network` — link model: NVLink within a node,
  InfiniBand between nodes, latency + bandwidth per message.
* :mod:`repro.parallel.comm` — ``VirtualComm``: an mpi4py-like in-process
  message layer (send/recv/isend/irecv/allreduce, tags, Requests) that the
  numeric engine moves *all* inter-tile data through, so message counts and
  byte volumes are measured, not estimated.
* :mod:`repro.parallel.memory` — per-rank peak-memory tracker.
* :mod:`repro.parallel.event_sim` — discrete-event timing interpreter for
  schedules (produces runtime, waiting and communication breakdowns).
"""

from repro.parallel.topology import ClusterTopology, MeshLayout
from repro.parallel.network import LinkSpec, NetworkModel
from repro.parallel.comm import Message, Request, VirtualComm, CommError
from repro.parallel.memory import MemoryTracker
from repro.parallel.collectives import ring_allreduce
from repro.parallel.event_sim import (EventSimulator, RankTimeline, SimReport, TraceEvent)

__all__ = [
    "ClusterTopology",
    "MeshLayout",
    "LinkSpec",
    "NetworkModel",
    "VirtualComm",
    "Message",
    "Request",
    "CommError",
    "MemoryTracker",
    "ring_allreduce",
    "EventSimulator",
    "RankTimeline",
    "SimReport",
    "TraceEvent",
]
