"""Cluster and mesh topology.

The paper runs on Summit: 6 V100 GPUs per node, nodes on a fat-tree EDR
InfiniBand.  Ranks (one per GPU) are laid out on a logical 2-D mesh that
matches the tile grid of the decomposition; rank *i* lives on node
``i // gpus_per_node``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["ClusterTopology", "MeshLayout", "choose_mesh"]


@dataclass(frozen=True)
class ClusterTopology:
    """Physical cluster description."""

    n_ranks: int
    gpus_per_node: int = 6

    def __post_init__(self) -> None:
        if self.n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")

    @property
    def n_nodes(self) -> int:
        """Number of nodes, rounding up a partial node."""
        return -(-self.n_ranks // self.gpus_per_node)

    def node_of(self, rank: int) -> int:
        """Node hosting ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when both ranks share a node (NVLink reachable)."""
        return self.node_of(a) == self.node_of(b)

    def ranks_on_node(self, node: int) -> List[int]:
        """All ranks hosted on ``node``."""
        lo = node * self.gpus_per_node
        hi = min(lo + self.gpus_per_node, self.n_ranks)
        if lo >= self.n_ranks:
            raise ValueError(f"node {node} beyond cluster size")
        return list(range(lo, hi))

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} out of range [0,{self.n_ranks})")


def choose_mesh(n_ranks: int, aspect: float = 1.0) -> Tuple[int, int]:
    """Pick mesh dimensions ``(rows, cols)`` with ``rows*cols == n_ranks``
    whose aspect ratio ``rows/cols`` is closest to ``aspect``.

    The paper's GPU counts are chosen to factor nicely (e.g. 4158 = 63*66,
    exactly one tile per small-dataset probe); for prime-ish counts this
    degrades gracefully to a 1 x N strip.
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    if aspect <= 0:
        raise ValueError("aspect must be positive")
    best: Tuple[int, int] = (1, n_ranks)
    best_err = abs(math.log(1.0 / n_ranks) - math.log(aspect))
    for rows in range(1, int(math.isqrt(n_ranks)) + 1):
        if n_ranks % rows:
            continue
        cols = n_ranks // rows
        for cand in ((rows, cols), (cols, rows)):
            err = abs(math.log(cand[0] / cand[1]) - math.log(aspect))
            if err < best_err:
                best, best_err = cand, err
    return best


@dataclass(frozen=True)
class MeshLayout:
    """Logical 2-D mesh of ranks: rank = ``row * cols + col`` (row-major),
    mirroring the 3x3 example mesh of the paper's Fig. 5."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("mesh dims must be positive")

    @property
    def n_ranks(self) -> int:
        """Total ranks on the mesh."""
        return self.rows * self.cols

    def rank_of(self, row: int, col: int) -> int:
        """Rank at mesh coordinate ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"mesh coordinate ({row},{col}) out of range")
        return row * self.cols + col

    def coords_of(self, rank: int) -> Tuple[int, int]:
        """Mesh coordinate of ``rank``."""
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} out of range")
        return divmod(rank, self.cols)

    def column_ranks(self, col: int) -> List[int]:
        """Ranks of one mesh column, top to bottom (a vertical-pass chain)."""
        return [self.rank_of(r, col) for r in range(self.rows)]

    def row_ranks(self, row: int) -> List[int]:
        """Ranks of one mesh row, left to right (a horizontal-pass chain)."""
        return [self.rank_of(row, c) for c in range(self.cols)]

    def neighbors8(self, rank: int) -> List[int]:
        """The up-to-8 direct mesh neighbours (including diagonals, which
        matter for corner overlaps, paper Fig. 3(b))."""
        row, col = self.coords_of(rank)
        out = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                r, c = row + dr, col + dc
                if 0 <= r < self.rows and 0 <= c < self.cols:
                    out.append(self.rank_of(r, c))
        return out
