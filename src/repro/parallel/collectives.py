"""Collectives implemented over the point-to-point message layer.

:func:`ring_allreduce` is the textbook two-phase ring algorithm
(reduce-scatter + all-gather) expressed purely in ``VirtualComm`` sends
and receives — the communication pattern whose cost formula the network
model charges for :class:`~repro.schedule.ops.AllReduceGradient`.  Tests
verify both that the result equals the direct sum and that the message
count matches the ``2 * (P - 1) * P`` analytic count, tying the timing
model to an executable definition.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.parallel.comm import VirtualComm

__all__ = ["ring_allreduce"]

#: Tag namespace for collective traffic.
TAG_RING = 900


def ring_allreduce(
    comm: VirtualComm, buffers: List[np.ndarray]
) -> List[np.ndarray]:
    """Sum ``buffers`` (one per rank) via a ring; every rank gets the sum.

    Parameters
    ----------
    comm:
        The communicator (size must equal ``len(buffers)``).
    buffers:
        Per-rank 1-D-reshapeable arrays of identical shape/dtype.  Inputs
        are not mutated; fresh arrays are returned.

    Notes
    -----
    Phase 1 (reduce-scatter): in step ``s``, rank ``r`` sends chunk
    ``(r - s) mod P`` to rank ``r+1`` and receives/accumulates chunk
    ``(r - s - 1) mod P``.  After ``P-1`` steps rank ``r`` owns the fully
    reduced chunk ``(r + 1) mod P``.  Phase 2 (all-gather) circulates the
    reduced chunks the same way.
    """
    p = comm.n_ranks
    if len(buffers) != p:
        raise ValueError(f"need {p} buffers, got {len(buffers)}")
    shape = buffers[0].shape
    dtype = buffers[0].dtype
    for b in buffers:
        if b.shape != shape or b.dtype != dtype:
            raise ValueError("buffers must share shape and dtype")
    if p == 1:
        return [buffers[0].copy()]

    flat = [b.reshape(-1).copy() for b in buffers]
    n = flat[0].size
    # Chunk boundaries (last chunk absorbs the remainder).
    edges = [n * i // p for i in range(p + 1)]

    def chunk(arr: np.ndarray, idx: int) -> np.ndarray:
        return arr[edges[idx % p] : edges[idx % p + 1]]

    # Phase 1: reduce-scatter.
    for step in range(p - 1):
        for rank in range(p):
            send_idx = (rank - step) % p
            comm.send(
                chunk(flat[rank], send_idx).copy(),
                rank,
                (rank + 1) % p,
                tag=TAG_RING,
            )
        for rank in range(p):
            recv_idx = (rank - step - 1) % p
            payload = comm.recv(rank, (rank - 1) % p, tag=TAG_RING)
            chunk(flat[rank], recv_idx)[...] += payload

    # Phase 2: all-gather of the reduced chunks.
    for step in range(p - 1):
        for rank in range(p):
            send_idx = (rank + 1 - step) % p
            comm.send(
                chunk(flat[rank], send_idx).copy(),
                rank,
                (rank + 1) % p,
                tag=TAG_RING + 1,
            )
        for rank in range(p):
            recv_idx = (rank - step) % p
            payload = comm.recv(rank, (rank - 1) % p, tag=TAG_RING + 1)
            chunk(flat[rank], recv_idx)[...] = payload

    return [f.reshape(shape) for f in flat]
