"""``VirtualComm`` — an in-process, mpi4py-shaped message layer.

The numeric engine moves *every* inter-tile array through this layer:
``isend``/``irecv`` mirror ``mpi4py.MPI.Comm`` semantics (tags, Requests
with ``wait()``), and the comm records message counts and byte volumes so
experiment reports use measured traffic, not estimates.

Because the numeric engine executes a schedule in topological order, a
matching send always precedes its receive; a receive that finds no matching
message therefore indicates a schedule bug and raises :class:`CommError`
immediately (the in-process analogue of an MPI deadlock).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Message", "Request", "VirtualComm", "CommError"]


class CommError(RuntimeError):
    """Raised on messaging protocol violations (unmatched receive, bad
    rank, double-completed request)."""


@dataclass
class Message:
    """An in-flight message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int


@dataclass
class Request:
    """Handle returned by the non-blocking operations.

    ``wait()`` completes the operation: for an isend it is a no-op (the
    payload was buffered eagerly); for an irecv it dequeues and returns the
    payload.
    """

    comm: "VirtualComm" = field(repr=False)
    kind: str = "send"
    src: int = -1
    dst: int = -1
    tag: int = 0
    _done: bool = False
    _payload: Any = None

    def wait(self) -> Any:
        """Complete the operation; returns the payload for receives."""
        if self._done:
            raise CommError("request already completed")
        self._done = True
        if self.kind == "recv":
            self._payload = self.comm._pop_message(self.src, self.dst, self.tag)
            return self._payload
        return None

    def test(self) -> Tuple[bool, Any]:
        """Non-destructively check for completion readiness.

        Sends are always ready; receives are ready when a matching message
        is queued.  Mirrors ``mpi4py.MPI.Request.test``.
        """
        if self._done:
            return True, self._payload
        if self.kind == "send":
            return True, None
        ready = self.comm._has_message(self.src, self.dst, self.tag)
        return ready, None


def _payload_nbytes(payload: Any) -> int:
    """Best-effort byte size of a payload (ndarray or pickled-ish object)."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return 64  # small python object envelope


class VirtualComm:
    """Mailbox-based communicator over ``n_ranks`` in-process ranks."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self._n_ranks = n_ranks
        self._queues: Dict[Tuple[int, int, int], Deque[Message]] = defaultdict(
            deque
        )
        self.sent_messages = 0
        self.sent_bytes = 0
        self.per_rank_sent_bytes = np.zeros(n_ranks, dtype=np.int64)
        self.allreduce_calls = 0

    # ------------------------------------------------------------------
    def Get_size(self) -> int:
        """Communicator size (mpi4py spelling)."""
        return self._n_ranks

    @property
    def n_ranks(self) -> int:
        """Communicator size."""
        return self._n_ranks

    def _check_rank(self, rank: int, name: str) -> None:
        if not (0 <= rank < self._n_ranks):
            raise CommError(f"{name} rank {rank} out of range [0,{self._n_ranks})")

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: Any, src: int, dst: int, tag: int = 0) -> None:
        """Blocking-style send (buffered: completes immediately).

        Arrays are snapshot-copied so later in-place mutation at the sender
        cannot leak into the receiver — the engine must not cheat the
        message-passing semantics.
        """
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        if src == dst:
            raise CommError("self-send: src == dst")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        msg = Message(src, dst, tag, payload, _payload_nbytes(payload))
        self._queues[(src, dst, tag)].append(msg)
        self.sent_messages += 1
        self.sent_bytes += msg.nbytes
        self.per_rank_sent_bytes[src] += msg.nbytes

    def isend(self, payload: Any, src: int, dst: int, tag: int = 0) -> Request:
        """Non-blocking send; the returned request's ``wait`` is a no-op."""
        self.send(payload, src, dst, tag)
        return Request(comm=self, kind="send", src=src, dst=dst, tag=tag)

    def recv(self, dst: int, src: int, tag: int = 0) -> Any:
        """Blocking receive of the oldest matching message."""
        return self._pop_message(src, dst, tag)

    def irecv(self, dst: int, src: int, tag: int = 0) -> Request:
        """Non-blocking receive; completes on ``wait()``."""
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        return Request(comm=self, kind="recv", src=src, dst=dst, tag=tag)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Global synchronization — a no-op in-process, where rank
        programs are already sequentialized.  (The cross-process
        :class:`~repro.runtime.process_comm.ProcessComm` implements the
        real thing behind the same name.)"""
        return

    def allreduce_sum(self, contributions: List[np.ndarray]) -> np.ndarray:
        """Sum of per-rank arrays, returned to every rank (conceptually).

        The numeric engine calls this with one (aligned) array per rank;
        byte accounting charges the ring-allreduce volume
        ``2*(P-1)/P * nbytes`` per rank.
        """
        if len(contributions) != self._n_ranks:
            raise CommError(
                f"allreduce needs {self._n_ranks} contributions, "
                f"got {len(contributions)}"
            )
        total = np.zeros_like(contributions[0])
        for arr in contributions:
            if arr.shape != total.shape:
                raise CommError("allreduce contributions must share a shape")
            total += arr
        per_rank = 2.0 * (self._n_ranks - 1) / self._n_ranks * total.nbytes
        self.sent_bytes += int(per_rank * self._n_ranks)
        self.sent_messages += 2 * (self._n_ranks - 1)
        self.per_rank_sent_bytes += int(per_rank)
        self.allreduce_calls += 1
        return total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _has_message(self, src: int, dst: int, tag: int) -> bool:
        return bool(self._queues.get((src, dst, tag)))

    def _pop_message(self, src: int, dst: int, tag: int) -> Any:
        queue = self._queues.get((src, dst, tag))
        if not queue:
            raise CommError(
                f"receive with no matching message: src={src} dst={dst} "
                f"tag={tag} (schedule ordering bug?)"
            )
        return queue.popleft().payload

    def pending_messages(self) -> int:
        """Messages sent but not yet received (should be zero at the end of
        a well-formed schedule — asserted in tests)."""
        return sum(len(q) for q in self._queues.values())
