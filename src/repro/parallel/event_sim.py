"""Discrete-event timing interpreter for schedules.

Executes a :class:`repro.schedule.Schedule` under a machine model and
produces per-rank timelines split into **compute**, **waiting** and
**communication** time — the three bars of the paper's Fig. 7b.

Semantics mirror an SPMD MPI program:

* each rank executes *its* ops in schedule order (program order);
* a :class:`BufferExchange` is an ``isend`` at the source (the source is
  only busy for the posting overhead — asynchronous pipelining!) plus a
  blocking ``recv`` at the destination, which waits for the message to
  arrive over the modeled link and then applies the add/replace;
* a :class:`VoxelPaste` is a *synchronous* send (the paper's Halo Voxel
  Exchange uses synchronous point-to-point copy-pastes, Sec. II-C), so the
  source is blocked for the full transfer;
* :class:`AllReduceGradient`/:class:`Barrier` synchronize everyone.

Because ops appear in topological order, a single forward sweep visiting
each op once — advancing per-rank clocks — is an exact simulation of this
semantics; no priority queue is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

import numpy as np

from repro.parallel.network import NetworkModel
from repro.schedule.ops import (
    AllReduceGradient,
    ApplyBufferUpdate,
    ApplyProbeUpdate,
    Barrier,
    BufferExchange,
    ComputeGradients,
    LocalSolve,
    Op,
    ProbeSync,
    ResetBuffer,
    Schedule,
    VoxelPaste,
)

__all__ = ["CostProvider", "RankTimeline", "TraceEvent", "SimReport", "EventSimulator"]


class CostProvider(Protocol):
    """Durations and message sizes the simulator needs.

    Implemented by :class:`repro.perfmodel.cost_model.SummitCostModel`;
    tests use trivial constant providers.
    """

    def gradient_seconds(self, rank: int, n_probes: int) -> float:
        """Time for ``n_probes`` gradient evaluations on ``rank``."""
        ...

    def exchange_bytes(self, region_area: int) -> float:
        """Message bytes for a buffer/voxel region of ``region_area`` pixels."""
        ...

    def apply_seconds(self, region_area: int) -> float:
        """Pointwise add/replace time for a received region."""
        ...

    def update_seconds(self, rank: int) -> float:
        """Tile update (``V -= lr * AccBuf``) time on ``rank``."""
        ...

    def allreduce_bytes(self) -> float:
        """Buffer size of the non-APPP global all-reduce."""
        ...


#: Cost of posting an asynchronous isend/irecv (software overhead).
ASYNC_POST_SECONDS = 1.5e-6


@dataclass
class RankTimeline:
    """Accumulated per-rank time accounting."""

    compute_s: float = 0.0
    wait_s: float = 0.0
    comm_s: float = 0.0
    clock_s: float = 0.0

    @property
    def total_s(self) -> float:
        """compute + wait + comm (== clock for a well-formed run)."""
        return self.compute_s + self.wait_s + self.comm_s


@dataclass(frozen=True)
class TraceEvent:
    """One op execution interval on one rank (for Gantt-style views —
    e.g. reproducing the paper's Fig. 5 pipeline diagram)."""

    uid: int
    rank: int
    kind: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class SimReport:
    """Result of simulating one schedule."""

    makespan_s: float
    timelines: List[RankTimeline]
    messages: int = 0
    message_bytes: float = 0.0
    trace: Optional[List[TraceEvent]] = None

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of simulated ranks."""
        return len(self.timelines)

    def mean(self, kind: str) -> float:
        """Mean of ``compute_s`` / ``wait_s`` / ``comm_s`` across ranks."""
        return float(np.mean([getattr(t, kind) for t in self.timelines]))

    def max(self, kind: str) -> float:
        """Max of a component across ranks."""
        return float(np.max([getattr(t, kind) for t in self.timelines]))

    def breakdown(self) -> Dict[str, float]:
        """Mean compute/wait/comm (paper Fig. 7b bars)."""
        return {
            "compute_s": self.mean("compute_s"),
            "wait_s": self.mean("wait_s"),
            "comm_s": self.mean("comm_s"),
        }


class EventSimulator:
    """Timing interpreter (see module docstring)."""

    def __init__(
        self,
        network: NetworkModel,
        costs: CostProvider,
    ) -> None:
        self.network = network
        self.costs = costs

    # ------------------------------------------------------------------
    def run(self, schedule: Schedule, record_trace: bool = False) -> SimReport:
        """Simulate ``schedule`` once and return the report.

        ``record_trace`` additionally captures per-op execution intervals
        (a Gantt chart of the run — how the paper's Fig. 5 pipeline
        diagram is regenerated).
        """
        n = schedule.n_ranks
        clock = np.zeros(n, dtype=np.float64)
        lines = [RankTimeline() for _ in range(n)]
        messages = 0
        message_bytes = 0.0
        trace: Optional[List[TraceEvent]] = [] if record_trace else None

        def record(uid: int, rank: int, kind: str, start: float, end: float) -> None:
            if trace is not None:
                trace.append(TraceEvent(uid, rank, kind, start, end))

        for op in schedule:
            if isinstance(op, (ComputeGradients, LocalSolve)):
                dur = self.costs.gradient_seconds(op.rank, len(op.probe_indices))
                record(op.uid, op.rank, "compute", clock[op.rank], clock[op.rank] + dur)
                clock[op.rank] += dur
                lines[op.rank].compute_s += dur

            elif isinstance(op, ApplyBufferUpdate):
                dur = self.costs.update_seconds(op.rank)
                record(op.uid, op.rank, "update", clock[op.rank], clock[op.rank] + dur)
                clock[op.rank] += dur
                lines[op.rank].compute_s += dur

            elif isinstance(op, ResetBuffer):
                dur = self.costs.update_seconds(op.rank) * 0.25
                record(op.uid, op.rank, "reset", clock[op.rank], clock[op.rank] + dur)
                clock[op.rank] += dur
                lines[op.rank].compute_s += dur

            elif isinstance(op, BufferExchange):
                nbytes = self.costs.exchange_bytes(op.region.area)
                messages += 1
                message_bytes += nbytes
                # Asynchronous isend: source busy only for the post.
                send_done = clock[op.src] + ASYNC_POST_SECONDS
                record(op.uid, op.src, "send", clock[op.src], send_done)
                clock[op.src] = send_done
                lines[op.src].comm_s += ASYNC_POST_SECONDS
                arrival = send_done + self.network.p2p_time(
                    op.src, op.dst, nbytes
                )
                # Blocking receive at the destination.  Split the blocked
                # time into waiting-on-sender (the sender had not posted
                # yet: orange bars of Fig. 7b) and network transfer after
                # the post (blue bars).
                ready = clock[op.dst]
                blocked = max(0.0, arrival - ready)
                wait_on_sender = min(max(0.0, send_done - ready), blocked)
                lines[op.dst].wait_s += wait_on_sender
                lines[op.dst].comm_s += (
                    blocked - wait_on_sender + ASYNC_POST_SECONDS
                )
                apply_dur = self.costs.apply_seconds(op.region.area)
                lines[op.dst].compute_s += apply_dur
                end = max(ready, arrival) + ASYNC_POST_SECONDS + apply_dur
                record(op.uid, op.dst, "recv", ready, end)
                clock[op.dst] = end

            elif isinstance(op, VoxelPaste):
                nbytes = self.costs.exchange_bytes(op.region.area)
                messages += 1
                message_bytes += nbytes
                # Synchronous send: the source is blocked for the transfer.
                transfer = self.network.p2p_time(op.src, op.dst, nbytes)
                send_start = clock[op.src]
                record(op.uid, op.src, "send", send_start, send_start + transfer)
                clock[op.src] = send_start + transfer
                lines[op.src].comm_s += transfer
                arrival = send_start + transfer
                ready = clock[op.dst]
                blocked = max(0.0, arrival - ready)
                wait_on_sender = min(max(0.0, send_start - ready), blocked)
                lines[op.dst].wait_s += wait_on_sender
                lines[op.dst].comm_s += blocked - wait_on_sender
                apply_dur = self.costs.apply_seconds(op.region.area)
                lines[op.dst].compute_s += apply_dur
                end = max(ready, arrival) + apply_dur
                record(op.uid, op.dst, "recv", ready, end)
                clock[op.dst] = end

            elif isinstance(op, AllReduceGradient):
                nbytes = self.costs.allreduce_bytes()
                start = float(clock.max())
                dur = self.network.allreduce_time(n, nbytes)
                for r in range(n):
                    lines[r].wait_s += start - clock[r]
                    lines[r].comm_s += dur
                    record(op.uid, r, "allreduce", clock[r], start + dur)
                clock[:] = start + dur
                # Ring all-reduce: 2*(P-1) steps, each moving nbytes total
                # across the ring (nbytes/P per rank, P ranks in flight).
                messages += 2 * (n - 1)
                message_bytes += nbytes * 2.0 * (n - 1)

            elif isinstance(op, Barrier):
                start = float(clock.max())
                dur = 2e-6 * max(1.0, np.log2(max(n, 2)))
                for r in range(n):
                    lines[r].wait_s += start - clock[r]
                    lines[r].comm_s += dur
                    record(op.uid, r, "barrier", clock[r], start + dur)
                clock[:] = start + dur

            elif isinstance(op, ProbeSync):
                # Small all-reduce of one detector-sized array; cheap by
                # construction (the probe is global, unlike the volume).
                nbytes = float(
                    getattr(self.costs, "probe_bytes", lambda: 0.0)()
                )
                start = float(clock.max())
                dur = self.network.allreduce_time(n, nbytes)
                for r in range(n):
                    lines[r].wait_s += start - clock[r]
                    lines[r].comm_s += dur
                    record(op.uid, r, "probesync", clock[r], start + dur)
                clock[:] = start + dur
                messages += 2 * (n - 1)
                message_bytes += nbytes * 2.0 * (n - 1)

            elif isinstance(op, ApplyProbeUpdate):
                dur = float(
                    getattr(self.costs, "probe_update_seconds", lambda r: 0.0)(
                        op.rank
                    )
                )
                record(op.uid, op.rank, "update", clock[op.rank], clock[op.rank] + dur)
                clock[op.rank] += dur
                lines[op.rank].compute_s += dur

            else:  # pragma: no cover - future op types
                raise TypeError(f"event simulator cannot time {type(op).__name__}")

        for r in range(n):
            lines[r].clock_s = float(clock[r])
        return SimReport(
            makespan_s=float(clock.max()),
            timelines=lines,
            messages=messages,
            message_bytes=message_bytes,
            trace=trace,
        )

    def run_iterations(
        self, schedule: Schedule, n_iterations: int, warmup: int = 1
    ) -> SimReport:
        """Time ``n_iterations`` repetitions of ``schedule``.

        One iteration of the reconstruction is homogeneous, so we simulate
        ``warmup + 1`` copies back-to-back and extrapolate the steady-state
        iteration — keeping full-scale simulations (4158 ranks, 100
        iterations) cheap.
        """
        if n_iterations <= 0:
            raise ValueError("n_iterations must be positive")
        single = self.run(schedule)
        if n_iterations == 1:
            return single
        scale = float(n_iterations)
        lines = [
            RankTimeline(
                compute_s=t.compute_s * scale,
                wait_s=t.wait_s * scale,
                comm_s=t.comm_s * scale,
                clock_s=t.clock_s * scale,
            )
            for t in single.timelines
        ]
        return SimReport(
            makespan_s=single.makespan_s * scale,
            timelines=lines,
            messages=single.messages * n_iterations,
            message_bytes=single.message_bytes * n_iterations,
        )
