"""Interconnect model.

Summit's relevant numbers (paper Sec. VI-A): NVLink at 50 GB/s one-way
between GPUs sharing a node, EDR InfiniBand at 100 Gbit/s (=12.5 GB/s) in a
non-blocking fat tree between nodes.  A message of ``b`` bytes over a link
costs ``latency + b / bandwidth`` (the alpha-beta model); all-reduce uses
the standard ring formula.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.topology import ClusterTopology

__all__ = ["LinkSpec", "NetworkModel"]


@dataclass(frozen=True)
class LinkSpec:
    """One class of link in the alpha-beta cost model."""

    latency_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, n_bytes: float) -> float:
        """Time to move ``n_bytes`` over this link."""
        if n_bytes < 0:
            raise ValueError("message size must be non-negative")
        return self.latency_s + n_bytes / self.bandwidth_bytes_per_s


#: NVLink gen2: 50 GB/s one-way, ~2 microseconds software latency.
NVLINK = LinkSpec(latency_s=2e-6, bandwidth_bytes_per_s=50e9)

#: EDR InfiniBand through MPI: 12.5 GB/s, ~5 microseconds.
INFINIBAND = LinkSpec(latency_s=5e-6, bandwidth_bytes_per_s=12.5e9)


class NetworkModel:
    """Maps (src, dst, bytes) to a transfer time using the topology.

    Parameters
    ----------
    topology:
        Rank-to-node mapping.
    intra_node / inter_node:
        Link classes; defaults model Summit.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        intra_node: LinkSpec = NVLINK,
        inter_node: LinkSpec = INFINIBAND,
        collective: LinkSpec | None = None,
    ) -> None:
        self.topology = topology
        self.intra_node = intra_node
        self.inter_node = inter_node
        #: Effective per-step link for collective operations; large
        #: all-reduces sustain far less than point-to-point line rate
        #: (chunking, algorithm switching, cross-node reduction trees).
        self.collective = collective

    def link(self, src: int, dst: int) -> LinkSpec:
        """The link class connecting two ranks."""
        if src == dst:
            raise ValueError("no self-links: src == dst")
        if self.topology.same_node(src, dst):
            return self.intra_node
        return self.inter_node

    def p2p_time(self, src: int, dst: int, n_bytes: float) -> float:
        """Point-to-point message time (alpha-beta model)."""
        return self.link(src, dst).transfer_time(n_bytes)

    def allreduce_time(self, n_ranks: int, n_bytes: float) -> float:
        """Ring all-reduce across ``n_ranks`` of a ``n_bytes`` buffer.

        ``2*(P-1)`` steps, each moving ``n_bytes/P`` over the slowest link
        class in use.  For multi-node jobs that is InfiniBand — exactly why
        the paper rejects all-reduce for gradient synchronization (Sec. V).
        """
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        if n_ranks == 1:
            return 0.0
        if self.collective is not None:
            link = self.collective
        else:
            multi_node = self.topology.n_nodes > 1
            link = self.inter_node if multi_node else self.intra_node
        steps = 2 * (n_ranks - 1)
        return steps * link.transfer_time(n_bytes / n_ranks)
