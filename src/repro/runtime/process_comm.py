"""``ProcessComm`` — the cross-process sibling of ``VirtualComm``.

One instance lives in each worker process and carries that worker's
hosted ranks.  The surface is the one the numeric engine already speaks
(``send``/``recv``/``isend``/``irecv`` with tags, ``Request`` handles,
``allreduce_sum``, ``barrier``), so the engine is executor-agnostic: the
same op handlers run against a :class:`~repro.parallel.comm.VirtualComm`
in-process or a ``ProcessComm`` across workers.

Transport
---------
* **Point-to-point** — one multiprocessing queue per *rank* (its inbox).
  A receive drains its rank's inbox into a local mailbox keyed
  ``(src, dst, tag)`` and pops FIFO per key — exactly ``VirtualComm``'s
  matching rule, so message order is deterministic per key regardless of
  arrival interleaving.  A receive that sees no matching message within
  ``timeout`` raises :class:`~repro.parallel.comm.CommError` (the
  cross-process analogue of ``VirtualComm``'s immediate unmatched-receive
  error).
* **Tile-buffer all-reduce** — gradient buffers live in shared memory
  (registered at worker start-up via :meth:`register_tile_buffers`), so
  :meth:`accbuf_allreduce` is two barriers around a deterministic
  rank-ordered summation: every worker reads all buffers, then writes
  only its own ranks' restrictions.  Bit-identical to the serial
  engine's inline path because the summation order is the same.
* **Probe all-reduce** — small global arrays go through an *uncounted*
  gather-to-root/broadcast channel; root sums in rank order.

Accounting
----------
Per-worker counters mirror ``VirtualComm``: p2p sends count messages and
payload bytes locally; collectives record *events* (kind + byte size)
on the root worker only.  The parent aggregates worker snapshots and
replays the exact ``VirtualComm``/engine arithmetic per event (see
:func:`aggregate_counters`), so a ``process`` run reports the same
message and byte totals as the ``serial`` run it mirrors.
"""

from __future__ import annotations

import queue as queue_mod
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.comm import CommError, Message, Request, _payload_nbytes

__all__ = [
    "CommChannels",
    "ProcessComm",
    "CounterSnapshot",
    "AggregatedCounters",
    "aggregate_counters",
]

#: Collective event kinds (see ``aggregate_counters``).
EVENT_VOLUME_ALLREDUCE = "volume_allreduce"
EVENT_PROBE_ALLREDUCE = "probe_allreduce"


@dataclass
class CommChannels:
    """The shared transport a parent builds once per launch.

    ``inboxes[rank]`` is the p2p queue drained by the worker hosting
    ``rank``; ``gather``/``bcast`` form the uncounted collective channel
    rooted at worker 0; ``barrier`` has one party per worker.
    """

    inboxes: List[Any]
    gather: Any
    bcast: List[Any]
    barrier: Any
    n_workers: int


@dataclass
class CounterSnapshot:
    """One worker's cumulative traffic counters, shipped to the parent.

    Collectives are pre-aggregated as ``(kind, nbytes, count)`` triples
    (root worker only) — one entry per distinct call signature, not per
    call, so snapshot size and replay cost stay constant over a run of
    any length.
    """

    sent_messages: int = 0
    sent_bytes: int = 0
    per_rank_sent_bytes: Dict[int, int] = field(default_factory=dict)
    events: List[Tuple[str, int, int]] = field(default_factory=list)


@dataclass
class AggregatedCounters:
    """Cluster-wide view assembled from worker snapshots; attribute
    names match ``VirtualComm`` so result assembly is comm-agnostic."""

    sent_messages: int
    sent_bytes: int
    per_rank_sent_bytes: np.ndarray
    allreduce_calls: int


def aggregate_counters(
    snapshots: Sequence[CounterSnapshot], n_ranks: int
) -> AggregatedCounters:
    """Combine worker snapshots into ``VirtualComm``-equivalent totals.

    P2p counters sum exactly (they are per-message integers).  Collective
    events are replayed with the *same arithmetic* the serial path uses,
    once per distinct ``(kind, nbytes)`` signature and scaled by its call
    count (exact, because the per-call accounting is integer):

    * ``volume_allreduce`` — the engine's inline ring accounting:
      ``per_rank = int(2(P-1)/P · nbytes)``, ``bytes += per_rank·P``,
      ``messages += 2(P-1)·P``;
    * ``probe_allreduce`` — ``VirtualComm.allreduce_sum``'s accounting:
      ``bytes += int(2(P-1)/P · nbytes · P)``, ``messages += 2(P-1)``.
    """
    messages = 0
    total_bytes = 0
    per_rank = np.zeros(n_ranks, dtype=np.int64)
    allreduce_calls = 0
    for snap in snapshots:
        messages += snap.sent_messages
        total_bytes += snap.sent_bytes
        for rank, nbytes in snap.per_rank_sent_bytes.items():
            per_rank[rank] += nbytes
        for kind, nbytes, count in snap.events:
            p = n_ranks
            if kind == EVENT_VOLUME_ALLREDUCE:
                share = int(2 * (p - 1) / p * nbytes)
                total_bytes += share * p * count
                messages += 2 * (p - 1) * p * count
                per_rank += share * count
                allreduce_calls += count
            elif kind == EVENT_PROBE_ALLREDUCE:
                share = 2.0 * (p - 1) / p * nbytes
                total_bytes += int(share * p) * count
                messages += 2 * (p - 1) * count
                per_rank += int(share) * count
                allreduce_calls += count
            else:  # pragma: no cover - future collective kinds
                raise ValueError(f"unknown collective event {kind!r}")
    return AggregatedCounters(
        sent_messages=messages,
        sent_bytes=total_bytes,
        per_rank_sent_bytes=per_rank,
        allreduce_calls=allreduce_calls,
    )


class ProcessComm:
    """Worker-side communicator over ``n_ranks`` ranks split across
    processes (see module docstring).

    Parameters
    ----------
    n_ranks:
        Communicator size (all ranks, across every worker).
    hosted:
        The ranks this worker executes, ascending.
    worker_index:
        This worker's index; worker 0 roots the collective channel.
    channels:
        The shared transport (queues + barrier) built by the parent.
    timeout:
        Seconds a receive/collective/barrier waits before declaring the
        schedule deadlocked and raising :class:`CommError`.
    """

    #: Engines route collectives through the comm when this is set
    #: (the serial ``VirtualComm`` keeps the inline path).
    is_distributed = True

    def __init__(
        self,
        n_ranks: int,
        hosted: Sequence[int],
        worker_index: int,
        channels: CommChannels,
        timeout: float = 120.0,
    ) -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self._n_ranks = n_ranks
        self._hosted = tuple(sorted(hosted))
        if not self._hosted:
            raise ValueError("a worker must host at least one rank")
        for r in self._hosted:
            self._check_rank(r, "hosted")
        self._worker_index = worker_index
        self._channels = channels
        self._timeout = float(timeout)
        self._mailbox: Dict[Tuple[int, int, int], Deque[Message]] = (
            defaultdict(deque)
        )
        self.sent_messages = 0
        self.sent_bytes = 0
        self.per_rank_sent_bytes = np.zeros(n_ranks, dtype=np.int64)
        self.allreduce_calls = 0
        #: (kind, nbytes) -> cumulative call count; root worker only.
        self._events: Dict[Tuple[str, int], int] = {}
        self._tile_buffers: Optional[Dict[int, np.ndarray]] = None
        self._tile_slices: Optional[Dict[int, Tuple[slice, slice]]] = None

    # ------------------------------------------------------------------
    def Get_size(self) -> int:
        """Communicator size (mpi4py spelling)."""
        return self._n_ranks

    @property
    def n_ranks(self) -> int:
        """Communicator size."""
        return self._n_ranks

    @property
    def hosted_ranks(self) -> Tuple[int, ...]:
        """Ranks this worker executes."""
        return self._hosted

    def _check_rank(self, rank: int, name: str) -> None:
        if not (0 <= rank < self._n_ranks):
            raise CommError(
                f"{name} rank {rank} out of range [0,{self._n_ranks})"
            )

    def _check_hosted(self, rank: int, role: str) -> None:
        if rank not in self._hosted:
            raise CommError(
                f"{role} rank {rank} is not hosted by this worker "
                f"(hosted: {list(self._hosted)})"
            )

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: Any, src: int, dst: int, tag: int = 0) -> None:
        """Buffered send from a hosted ``src`` to any ``dst``'s inbox.

        Arrays are snapshot-copied before enqueueing, mirroring
        ``VirtualComm`` — later in-place mutation at the sender cannot
        leak into the receiver.
        """
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        self._check_hosted(src, "sending")
        if src == dst:
            raise CommError("self-send: src == dst")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        msg = Message(src, dst, tag, payload, _payload_nbytes(payload))
        self._channels.inboxes[dst].put(msg)
        self.sent_messages += 1
        self.sent_bytes += msg.nbytes
        self.per_rank_sent_bytes[src] += msg.nbytes

    def isend(self, payload: Any, src: int, dst: int, tag: int = 0) -> Request:
        """Non-blocking send; the returned request's ``wait`` is a no-op."""
        self.send(payload, src, dst, tag)
        return Request(comm=self, kind="send", src=src, dst=dst, tag=tag)

    def recv(self, dst: int, src: int, tag: int = 0) -> Any:
        """Blocking receive of the oldest matching message."""
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        self._check_hosted(dst, "receiving")
        return self._pop_message(src, dst, tag)

    def irecv(self, dst: int, src: int, tag: int = 0) -> Request:
        """Non-blocking receive; completes on ``wait()``."""
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        self._check_hosted(dst, "receiving")
        return Request(comm=self, kind="recv", src=src, dst=dst, tag=tag)

    # -- Request plumbing (same contract as VirtualComm) ---------------
    def _drain(self, dst: int, block_for: Optional[Tuple[int, int, int]]) -> bool:
        """Move queued inbox messages into the mailbox.

        With ``block_for`` set, waits up to the timeout for a message
        matching that key and returns whether it arrived; otherwise
        drains whatever is immediately available.
        """
        inbox = self._channels.inboxes[dst]
        while True:
            try:
                msg = inbox.get(
                    block=block_for is not None, timeout=self._timeout
                )
            except queue_mod.Empty:
                return False
            key = (msg.src, msg.dst, msg.tag)
            self._mailbox[key].append(msg)
            if block_for is not None and key == block_for:
                return True
            if block_for is None and inbox.empty():
                return True

    def _pop_message(self, src: int, dst: int, tag: int) -> Any:
        key = (src, dst, tag)
        while not self._mailbox.get(key):
            if not self._drain(dst, block_for=key):
                raise CommError(
                    f"receive with no matching message after "
                    f"{self._timeout:g}s: src={src} dst={dst} tag={tag} "
                    f"(schedule ordering bug or dead peer?)"
                )
        return self._mailbox[key].popleft().payload

    def _has_message(self, src: int, dst: int, tag: int) -> bool:
        if dst in self._hosted:
            self._drain(dst, block_for=None)
        return bool(self._mailbox.get((src, dst, tag)))

    def pending_messages(self) -> int:
        """Locally buffered (received-but-unmatched) messages."""
        return sum(len(q) for q in self._mailbox.values())

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Block until every worker arrives."""
        try:
            self._channels.barrier.wait(self._timeout)
        except Exception as exc:  # BrokenBarrierError and friends
            raise CommError(f"barrier failed: {exc!r}") from exc

    def register_tile_buffers(
        self,
        buffers: Dict[int, np.ndarray],
        slices: Dict[int, Tuple[slice, slice]],
    ) -> None:
        """Register every rank's shared gradient buffer and its placement
        (row/col slices) in the global frame — the substrate
        :meth:`accbuf_allreduce` reduces over."""
        if set(buffers) != set(range(self._n_ranks)):
            raise ValueError("tile buffers must cover every rank")
        self._tile_buffers = dict(buffers)
        self._tile_slices = dict(slices)

    def accbuf_allreduce(self, frame_shape: Tuple[int, ...]) -> None:
        """Global sum of all tile buffers scattered into ``frame_shape``;
        each hosted buffer is overwritten with its restriction.

        Summation runs in ascending rank order on every worker — the
        exact order of the serial engine's inline path — so results are
        bit-identical to a serial run.
        """
        if self._tile_buffers is None or self._tile_slices is None:
            raise CommError(
                "accbuf_allreduce before register_tile_buffers"
            )
        self.barrier()  # all ranks finished writing their buffers
        total = np.zeros(
            frame_shape, dtype=self._tile_buffers[0].dtype
        )
        for rank in range(self._n_ranks):
            sl = self._tile_slices[rank]
            total[(slice(None), *sl)] += self._tile_buffers[rank]
        self.barrier()  # all workers finished reading
        for rank in self._hosted:
            sl = self._tile_slices[rank]
            self._tile_buffers[rank][...] = total[(slice(None), *sl)]
        if self._n_ranks > 1:
            self.allreduce_calls += 1
            if self._worker_index == 0:
                self._record_event(EVENT_VOLUME_ALLREDUCE, int(total.nbytes))

    def allreduce_sum(self, contributions: List[np.ndarray]) -> np.ndarray:
        """Rank-ordered global sum of one array per *hosted* rank,
        returned to every worker (the probe-gradient collective).

        Data moves over the uncounted gather/broadcast channel; traffic
        is accounted as one ring all-reduce event, exactly as
        ``VirtualComm.allreduce_sum`` charges it.
        """
        if len(contributions) != len(self._hosted):
            raise CommError(
                f"allreduce needs {len(self._hosted)} hosted "
                f"contributions, got {len(contributions)}"
            )
        local = list(zip(self._hosted, contributions))
        ch = self._channels
        if self._worker_index == 0:
            pairs = list(local)
            for _ in range(ch.n_workers - 1):
                try:
                    pairs.extend(ch.gather.get(timeout=self._timeout))
                except queue_mod.Empty:
                    raise CommError(
                        "allreduce gather timed out (dead worker?)"
                    ) from None
            pairs.sort(key=lambda rc: rc[0])
            if len(pairs) != self._n_ranks:
                raise CommError(
                    f"allreduce needs {self._n_ranks} contributions, "
                    f"got {len(pairs)}"
                )
            total = np.zeros_like(pairs[0][1])
            for _, arr in pairs:
                if arr.shape != total.shape:
                    raise CommError(
                        "allreduce contributions must share a shape"
                    )
                total += arr
            for w in range(1, ch.n_workers):
                ch.bcast[w].put(total)
            self._record_event(EVENT_PROBE_ALLREDUCE, int(total.nbytes))
        else:
            ch.gather.put([(r, np.asarray(a).copy()) for r, a in local])
            try:
                total = ch.bcast[self._worker_index].get(
                    timeout=self._timeout
                )
            except queue_mod.Empty:
                raise CommError(
                    "allreduce broadcast timed out (dead root?)"
                ) from None
        self.allreduce_calls += 1
        return total

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _record_event(self, kind: str, nbytes: int) -> None:
        key = (kind, nbytes)
        self._events[key] = self._events.get(key, 0) + 1

    def counters_snapshot(self) -> CounterSnapshot:
        """Cumulative counters for the parent-side aggregation — constant
        size regardless of how many iterations have run."""
        return CounterSnapshot(
            sent_messages=self.sent_messages,
            sent_bytes=int(self.sent_bytes),
            per_rank_sent_bytes={
                r: int(self.per_rank_sent_bytes[r]) for r in self._hosted
            },
            events=[
                (kind, nbytes, count)
                for (kind, nbytes), count in self._events.items()
            ],
        )
