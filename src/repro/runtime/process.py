"""``ProcessExecutor`` — real multi-process execution of rank programs.

Placement: the decomposition's ranks are split into contiguous blocks,
one block per worker process (``workers=`` bounds the pool; the default
is one worker per rank capped at the CPU count).  Each worker builds a
:class:`~repro.core.engine.NumericEngine` hosting its block and executes
the shared schedule — the engine skips ops whose ranks live elsewhere,
so every worker runs exactly its merged SPMD program.

Storage: every rank's extended-tile **volume** and **gradient buffer**
live in ``multiprocessing.shared_memory`` segments created by the
parent.  Workers mutate them in place (the engine never rebinds tile
arrays), the gradient all-reduce is a barrier-bracketed rank-ordered
reduction over the shared buffers, and the parent stitches final volumes
straight out of shared memory — no result pickling.

Messaging: halo/boundary traffic moves through a
:class:`~repro.runtime.process_comm.ProcessComm` per worker (one inbox
queue per rank), with the same matching semantics and byte accounting as
the serial :class:`~repro.parallel.comm.VirtualComm`.

Choreography: workers initialize, report readiness, then step one
iteration per parent command and block — so between iterations the
parent can safely read shared volumes (observer snapshots) and aggregate
counters.  Costs are reported per rank and summed parent-side in rank
order, which keeps the whole run — volumes, history, traffic counts —
fingerprint-identical to the serial executor on the numpy backend.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
import traceback
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.backend.base import resolve_precision
from repro.obs import telemetry as _obs
from repro.runtime.executor import (
    EnginePlan,
    ExecutionSession,
    Executor,
    register_executor,
)
from repro.runtime.process_comm import (
    CommChannels,
    CounterSnapshot,
    ProcessComm,
    aggregate_counters,
)

__all__ = ["ProcessExecutor", "partition_ranks"]

logger = logging.getLogger(__name__)

# Registering/unregistering with multiprocessing's resource tracker takes
# a process-wide RLock.  With fork workers, a child forked by one thread
# while another thread holds that lock (creating or unlinking a segment
# or semaphore for a different session) inherits it permanently locked
# and deadlocks on its first attach.  Serializing every tracker-touching
# span in this module — the only shm/semaphore user in-process — keeps
# the lock free at every fork point, so concurrent sessions (e.g. service
# worker threads) are safe.
_TRACKER_LOCK = threading.Lock()


def _reset_child_tracker_lock() -> None:
    """Give a freshly forked worker its own resource-tracker lock.

    The fork snapshots only the calling thread, so a tracker lock held
    by any other parent thread (a GC finalizer unregistering a SemLock,
    say) would never be released in the child.  The child is
    single-threaded here, so replacing the lock is safe; under spawn it
    is a fresh lock anyway and the swap is a no-op in effect.
    """
    from multiprocessing import resource_tracker

    tracker = getattr(resource_tracker, "_resource_tracker", None)
    if tracker is not None and hasattr(tracker, "_lock"):
        tracker._lock = threading.RLock()


def partition_ranks(n_ranks: int, n_workers: int) -> List[Tuple[int, ...]]:
    """Contiguous, balanced rank blocks — one per worker."""
    if n_workers <= 0 or n_workers > n_ranks:
        raise ValueError(
            f"need 1..{n_ranks} workers for {n_ranks} ranks, "
            f"got {n_workers}"
        )
    base, rem = divmod(n_ranks, n_workers)
    blocks: List[Tuple[int, ...]] = []
    start = 0
    for w in range(n_workers):
        size = base + (1 if w < rem else 0)
        blocks.append(tuple(range(start, start + size)))
        start += size
    return blocks


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment.

    Workers inherit the parent's resource-tracker process (both fork and
    spawn pass the tracker fd down), so the attach-side registration is
    an idempotent set-add there and the parent's ``unlink`` performs the
    single unregister — no per-worker bookkeeping needed.
    """
    return shared_memory.SharedMemory(name=name)


def _view(seg: shared_memory.SharedMemory, shape, dtype) -> np.ndarray:
    return np.ndarray(shape, dtype=dtype, buffer=seg.buf)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(
    worker_index: int,
    hosted: Tuple[int, ...],
    plan: EnginePlan,
    shm_names: Dict[Tuple[str, int], str],
    tile_shapes: Dict[int, Tuple[int, ...]],
    cdtype_name: str,
    channels: CommChannels,
    control: Any,
    results: Any,
    timeout: float,
) -> None:
    from repro.core.engine import NumericEngine  # after fork/spawn import
    from repro.data import DiffractionStore

    _reset_child_tracker_lock()
    # Worker-lifetime recorder: the engine binds it at construction, so
    # every op span / fft counter lands here and ships home with each
    # step report (the scope ends with the process; no __exit__ needed).
    tel = _obs.Telemetry() if plan.telemetry else _obs.NULL_TELEMETRY
    _obs.activate(tel).__enter__()
    segments: List[shared_memory.SharedMemory] = []
    engine = None
    worker_store = None
    try:
        cdtype = np.dtype(cdtype_name)
        n_ranks = plan.decomp.n_ranks
        acc_views: Dict[int, np.ndarray] = {}
        shared_arrays: Dict[Tuple[str, int], np.ndarray] = {}
        for rank in range(n_ranks):
            seg = _attach_segment(shm_names[("accbuf", rank)])
            segments.append(seg)
            acc_views[rank] = _view(seg, tile_shapes[rank], cdtype)
        for rank in hosted:
            seg = _attach_segment(shm_names[("volume", rank)])
            segments.append(seg)
            shared_arrays[("volume", rank)] = _view(
                seg, tile_shapes[rank], cdtype
            )
            shared_arrays[("accbuf", rank)] = acc_views[rank]

        comm = ProcessComm(
            n_ranks=n_ranks,
            hosted=hosted,
            worker_index=worker_index,
            channels=channels,
            timeout=timeout,
        )
        bounds = plan.decomp.bounds
        comm.register_tile_buffers(
            acc_views,
            {
                t.rank: t.ext.slices_in(bounds)
                for t in plan.decomp.tiles
            },
        )
        # A caller-supplied store instance reaches a *forked* worker
        # with the parent's open file handle inherited (pickling never
        # ran), and concurrent reads on one shared descriptor race;
        # re-open a per-worker copy.  Paths are already safe — each
        # engine opens its own handle.
        data_source = plan.data_source
        if isinstance(data_source, DiffractionStore):
            data_source = data_source.worker_copy()
            if data_source is not plan.data_source:
                worker_store = data_source
        engine = NumericEngine(
            plan.dataset,
            plan.decomp,
            lr=plan.lr,
            comm=comm,
            compensate_local=plan.compensate_local,
            initial_probe=plan.initial_probe,
            refine_probe=plan.refine_probe,
            initial_volume=plan.initial_volume,
            backend=plan.backend,
            dtype=plan.dtype,
            ranks=hosted,
            shared_arrays=shared_arrays,
            data_source=data_source,
            batch_size=plan.batch_size,
            prefetch=plan.prefetch,
            probe_modes=plan.probe_modes,
        )
        results.put(("ready", worker_index, None))

        while True:
            cmd = control.get()
            if cmd == "stop":
                break
            engine.execute(plan.schedule)
            report = {
                "costs": engine.iteration_costs(),
                "counters": comm.counters_snapshot(),
                "peaks": {
                    r: engine.memory.peak_bytes(r) for r in hosted
                },
                "probe": engine.current_probe(),
            }
            if tel.enabled:
                # Piggyback this step's spans/counters on the report —
                # the same seam the comm's event accounting rides.
                report["obs"] = tel.drain()
            results.put(("iter", worker_index, report))
    except BaseException:
        try:
            results.put(("error", worker_index, traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already broken
            pass
    finally:
        if engine is not None:
            engine.close()  # release this worker's store handle
        if worker_store is not None:
            worker_store.close()  # the re-opened per-worker copy
        engine = None
        acc_views = {}
        shared_arrays = {}
        for seg in segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - lingering view
                pass


# ----------------------------------------------------------------------
# Parent-side session
# ----------------------------------------------------------------------
class _ProcessSession(ExecutionSession):
    """Worker choreography + shared-memory state access (parent side)."""

    engine = None

    def __init__(
        self,
        plan: EnginePlan,
        workers: Optional[int],
        timeout: float,
        start_method: Optional[str] = None,
    ) -> None:
        decomp = plan.decomp
        self._plan = plan
        # Parent-side recorder: receives each worker's drained spans
        # plus the parent's own dispatch/collect accounting.
        self._obs = _obs.current()
        self._n_ranks = decomp.n_ranks
        self._timeout = float(timeout)
        self._refine_probe = plan.refine_probe
        n_workers = workers if workers is not None else (os.cpu_count() or 1)
        n_workers = max(1, min(int(n_workers), self._n_ranks))
        self._blocks = partition_ranks(self._n_ranks, n_workers)
        self._n_workers = n_workers
        self._closed = False
        self._procs: List[Any] = []
        self._segments: List[shared_memory.SharedMemory] = []

        precision = resolve_precision(plan.dtype)
        cdtype = precision.complex_dtype
        self._tile_shapes: Dict[int, Tuple[int, ...]] = {
            t.rank: (
                plan.dataset.n_slices, t.ext.height, t.ext.width
            )
            for t in decomp.tiles
        }

        if start_method is None:
            start_method = (
                "fork"
                if "fork" in mp.get_all_start_methods()
                else "spawn"
            )
        ctx = mp.get_context(start_method)

        shm_names: Dict[Tuple[str, int], str] = {}
        self._vol_views: Optional[List[np.ndarray]] = []
        try:
            with _TRACKER_LOCK:
                for rank in range(self._n_ranks):
                    nbytes = max(
                        1,
                        int(np.prod(self._tile_shapes[rank], dtype=np.int64))
                        * cdtype.itemsize,
                    )
                    for kind in ("volume", "accbuf"):
                        seg = shared_memory.SharedMemory(
                            create=True, size=nbytes
                        )
                        self._segments.append(seg)
                        shm_names[(kind, rank)] = seg.name
                        if kind == "volume":
                            self._vol_views.append(
                                _view(seg, self._tile_shapes[rank], cdtype)
                            )

                self._channels = CommChannels(
                    inboxes=[ctx.Queue() for _ in range(self._n_ranks)],
                    gather=ctx.Queue(),
                    bcast=[ctx.Queue() for _ in range(n_workers)],
                    barrier=ctx.Barrier(n_workers),
                    n_workers=n_workers,
                )
                self._controls = [ctx.Queue() for _ in range(n_workers)]
                self._results = ctx.Queue()

                for w, hosted in enumerate(self._blocks):
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(
                            w,
                            hosted,
                            plan,
                            shm_names,
                            self._tile_shapes,
                            cdtype.name,
                            self._channels,
                            self._controls[w],
                            self._results,
                            self._timeout,
                        ),
                        daemon=True,
                        name=f"repro-rank-worker-{w}",
                    )
                    proc.start()
                    self._procs.append(proc)

            self._snapshots: List[CounterSnapshot] = [
                CounterSnapshot() for _ in range(n_workers)
            ]
            self._peaks: Dict[int, int] = {
                r: 0 for r in range(self._n_ranks)
            }
            self._probe: Optional[np.ndarray] = None
            self._collect("ready")
            logger.info(
                "process session up: %d worker(s) over %d rank(s), "
                "start method %s",
                n_workers, self._n_ranks, start_method,
            )
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _collect(self, expected_kind: str) -> List[Dict[str, Any]]:
        """Gather one ``expected_kind`` report from every worker,
        surfacing worker tracebacks and silent deaths."""
        reports: Dict[int, Any] = {}
        while len(reports) < self._n_workers:
            try:
                kind, w, payload = self._results.get(timeout=1.0)
            except queue_mod.Empty:
                dead = [
                    p.name
                    for p in self._procs
                    if p.exitcode is not None and p.exitcode != 0
                ]
                if dead:
                    self.close()
                    raise RuntimeError(
                        f"worker process(es) died without reporting: "
                        f"{', '.join(dead)}"
                    )
                continue
            if kind == "error":
                self.close()
                raise RuntimeError(
                    f"rank worker {w} failed:\n{payload}"
                )
            if kind != expected_kind:  # pragma: no cover - protocol bug
                raise RuntimeError(
                    f"unexpected worker report {kind!r} "
                    f"(wanted {expected_kind!r})"
                )
            reports[w] = payload
        return [reports[w] for w in range(self._n_workers)]

    def step(self) -> float:
        if self._closed:
            raise RuntimeError("session is closed")
        tel = self._obs
        t0 = time.perf_counter() if tel.enabled else 0.0
        for control in self._controls:
            control.put("step")
        reports = self._collect("iter")
        if tel.enabled:
            # The parent's whole wait for the worker fleet — dispatch
            # to last report.  The gap between this and the merged
            # per-rank engine spans *is* the process-executor overhead
            # ROADMAP item 4 asks about.
            tel.add({
                "runtime.steps": 1,
                "runtime.collect.seconds": time.perf_counter() - t0,
            })
        costs: Dict[int, float] = {}
        for w, report in enumerate(reports):
            costs.update(report["costs"])
            self._snapshots[w] = report["counters"]
            self._peaks.update(report["peaks"])
            if report["probe"] is not None:
                self._probe = report["probe"]
            obs_payload = report.get("obs")
            if obs_payload is not None and tel.enabled:
                tel.ingest(obs_payload)
        # Rank-ordered summation — float-identical to the serial
        # engine's iteration_cost().
        return sum(costs[r] for r in range(self._n_ranks))

    # ------------------------------------------------------------------
    def volumes(self) -> List[np.ndarray]:
        if self._closed or self._vol_views is None:
            raise RuntimeError("session is closed")
        return list(self._vol_views)

    def probe(self) -> Optional[np.ndarray]:
        if not self._refine_probe or self._probe is None:
            return None
        return self._probe.copy()

    @property
    def _aggregated(self):
        return aggregate_counters(self._snapshots, self._n_ranks)

    @property
    def messages(self) -> int:
        return self._aggregated.sent_messages

    @property
    def message_bytes(self) -> int:
        return int(self._aggregated.sent_bytes)

    @property
    def per_rank_peaks(self) -> List[int]:
        return [self._peaks[r] for r in range(self._n_ranks)]

    @property
    def allreduce_calls(self) -> int:
        return self._aggregated.allreduce_calls

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for control in getattr(self, "_controls", []):
            try:
                control.put("stop")
            except Exception:  # pragma: no cover - queue torn down
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        # Drop our views before releasing the mappings; a view leaked to
        # user code merely keeps its mapping alive until collected.
        self._vol_views = None
        # Holding _TRACKER_LOCK *across* close/unlink is the point of
        # that lock (serialize every resource-tracker touch with fork
        # sites, see its definition), so the usual close-outside-the-
        # lock rule is inverted here on purpose.
        with _TRACKER_LOCK:
            for seg in self._segments:
                try:
                    seg.close()  # repro-lint: allow[lock-blocking]
                except BufferError:  # pragma: no cover - leaked view
                    pass
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        self._segments = []

    def __del__(self) -> None:  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass


@register_executor("process")
class ProcessExecutor(Executor):
    """One worker process per rank block, state in shared memory.

    Parameters
    ----------
    workers:
        Worker-pool width (default: one per rank, capped at the CPU
        count).  Fewer workers than ranks co-host contiguous rank
        blocks in one process.
    timeout:
        Seconds any cross-worker wait (receive, barrier, collective)
        may block before the run is declared deadlocked.
    start_method:
        ``multiprocessing`` start method override (default: ``fork``
        where available, else ``spawn``).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        timeout: float = 120.0,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(workers=workers)
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = float(timeout)
        self.start_method = start_method

    def launch(self, plan: EnginePlan) -> ExecutionSession:
        return _ProcessSession(
            plan,
            workers=self.workers,
            timeout=self.timeout,
            start_method=self.start_method,
        )
