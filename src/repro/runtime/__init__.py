"""repro.runtime — where rank programs execute.

The executor subsystem turns the decomposition the library *plans* into
parallelism it actually *runs*:

* :class:`Executor` / :func:`register_executor` — the placement registry
  (``"serial"``: all ranks in one process, the bit-exact reference;
  ``"process"``: one worker process per rank block, tile state in
  ``multiprocessing.shared_memory``, messages through
  :class:`ProcessComm`).
* :func:`resolve_executor` — ambient resolution with the backend rule:
  explicit argument → ``REPRO_EXECUTOR`` environment → ``serial``.  An
  executor pinned in a config is never overridden by the environment.
* :class:`EnginePlan` / :class:`ExecutionSession` — the small contract
  between a reconstructor's run loop and an executor.

Minimal use::

    GradientDecompositionReconstructor(
        n_ranks=4, executor="process", runtime_workers=4
    ).reconstruct(dataset)

or declaratively::

    ReconstructionConfig("gd", {...}, executor="process")
    repro-ptycho reconstruct --executor process ...

The ``process`` executor is fingerprint-identical to ``serial`` on the
numpy backend — same volumes bit-for-bit, same cost history, same
message/byte accounting (tested in ``tests/runtime``).
"""

from repro.runtime.executor import (
    DEFAULT_EXECUTOR_NAME,
    ENV_EXECUTOR,
    EnginePlan,
    ExecutionSession,
    Executor,
    SerialExecutor,
    UnknownExecutorError,
    default_executor_name,
    executor_names,
    get_executor,
    register_executor,
    resolve_executor,
    unregister_executor,
)
from repro.runtime.process import ProcessExecutor, partition_ranks
from repro.runtime.process_comm import (
    AggregatedCounters,
    CommChannels,
    CounterSnapshot,
    ProcessComm,
    aggregate_counters,
)

__all__ = [
    "ENV_EXECUTOR",
    "DEFAULT_EXECUTOR_NAME",
    "UnknownExecutorError",
    "EnginePlan",
    "ExecutionSession",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "ProcessComm",
    "CommChannels",
    "CounterSnapshot",
    "AggregatedCounters",
    "aggregate_counters",
    "partition_ranks",
    "register_executor",
    "unregister_executor",
    "executor_names",
    "get_executor",
    "resolve_executor",
    "default_executor_name",
]
