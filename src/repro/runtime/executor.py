"""The executor seam: *where* a reconstruction's rank programs run.

A reconstructor compiles one iteration to a :class:`~repro.schedule.ops.
Schedule` and hands it — together with everything the numeric engine
needs — to an :class:`Executor`.  The executor owns placement:

* ``"serial"`` — today's path: one :class:`~repro.core.engine.
  NumericEngine` hosts every rank in-process behind a
  :class:`~repro.parallel.comm.VirtualComm` (bit-exact, zero overhead,
  the correctness reference);
* ``"process"`` — :class:`~repro.runtime.process.ProcessExecutor`: each
  :class:`~repro.core.decomposition.RankTile` runs in a worker process,
  tile volumes and gradient buffers live in
  ``multiprocessing.shared_memory``, and boundary messages travel
  through a :class:`~repro.runtime.process_comm.ProcessComm`.

Executors register under a short name with :func:`register_executor`
(mirroring the solver and backend registries), and ambient resolution
follows the same precedence rule as backends: **explicit argument →
``REPRO_EXECUTOR`` environment → the built-in ``serial`` default**.  An
explicit ``executor=`` (e.g. pinned in a replayed config) is never
overridden by the environment.

The :class:`ExecutionSession` contract is intentionally small — step one
iteration, expose live volumes/counters, close — so the two
reconstructor run loops stay executor-agnostic.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Type,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotations only; the runtime
    # package must stay importable mid-way through repro.core's own
    # initialization (core.reconstructor imports this module).
    from repro.core.decomposition import Decomposition
    from repro.core.engine import NumericEngine
    from repro.physics.dataset import PtychoDataset
    from repro.schedule.ops import Schedule

__all__ = [
    "ENV_EXECUTOR",
    "DEFAULT_EXECUTOR_NAME",
    "UnknownExecutorError",
    "EnginePlan",
    "ExecutionSession",
    "Executor",
    "SerialExecutor",
    "register_executor",
    "unregister_executor",
    "executor_names",
    "get_executor",
    "resolve_executor",
    "default_executor_name",
]

#: Environment variable consulted when no explicit executor is given.
ENV_EXECUTOR = "REPRO_EXECUTOR"

#: Process-wide fallback (the bit-exact in-process reference).
DEFAULT_EXECUTOR_NAME = "serial"


class UnknownExecutorError(ValueError):
    """Raised for an executor name not in the registry; the message
    always lists what *is* registered."""


# ----------------------------------------------------------------------
# The launch payload
# ----------------------------------------------------------------------
@dataclass
class EnginePlan:
    """Everything a session needs to build per-rank numeric engines.

    One plan describes one reconstruction run; it is deliberately plain
    (dataset + decomposition + schedule + scalar knobs) so the process
    executor can ship it to worker processes under either the ``fork``
    or the ``spawn`` start method.
    """

    dataset: "PtychoDataset"
    decomp: "Decomposition"
    schedule: "Schedule"
    lr: float
    compensate_local: bool = False
    initial_probe: Optional[np.ndarray] = None
    refine_probe: bool = False
    initial_volume: Optional[np.ndarray] = None
    backend: Optional[str] = None
    dtype: Optional[str] = None
    #: Measurement source / batching (see :mod:`repro.data`).  A path
    #: (or ``None``/``"memory"``) ships to workers, each of which opens
    #: its own store handle; file-backed store *instances* are re-opened
    #: per worker via ``worker_copy()`` (fork would otherwise share the
    #: parent's file descriptor), while the in-memory reference rides
    #: fork's page sharing (or the pickle under spawn) as-is.
    data_source: Optional[object] = None
    batch_size: Optional[int] = None
    prefetch: bool = False
    #: Incoherent probe modes (mixed-state reconstruction).  ``None``/1
    #: keeps the scalar probe path bit-identical to the historical
    #: behaviour; ``M > 1`` makes every engine carry an ``(M, w, w)``
    #: mode stack.  Plain int/None so it pickles.
    probe_modes: Optional[int] = None
    #: Record per-rank telemetry in worker processes and ship it back
    #: with each step report (set by the reconstructor from the active
    #: recorder; see :mod:`repro.obs`).  Plain bool so it pickles.
    telemetry: bool = False


# ----------------------------------------------------------------------
# Session + executor contracts
# ----------------------------------------------------------------------
class ExecutionSession(ABC):
    """A launched reconstruction: per-iteration stepping + state access.

    Volumes returned by :meth:`volumes` are *live* (they reflect the
    state after the most recent :meth:`step`); sessions guarantee they
    are safe to read between steps.
    """

    #: The in-process engine, when there is one (serial executor only).
    #: Distributed sessions expose ``None`` — state lives in workers.
    engine: Optional["NumericEngine"] = None

    @abstractmethod
    def step(self) -> float:
        """Run one full iteration; returns the sweep cost."""

    @abstractmethod
    def volumes(self) -> List[np.ndarray]:
        """Per-rank extended-tile volumes, index-aligned with ranks."""

    @abstractmethod
    def probe(self) -> Optional[np.ndarray]:
        """Rank 0's current probe estimate (``None`` unless refining)."""

    @property
    @abstractmethod
    def messages(self) -> int:
        """Cumulative point-to-point + collective message count."""

    @property
    @abstractmethod
    def message_bytes(self) -> int:
        """Cumulative traffic volume in bytes."""

    @property
    @abstractmethod
    def per_rank_peaks(self) -> List[int]:
        """Measured peak bytes per rank."""

    def close(self) -> None:
        """Release resources (worker processes, shared memory)."""

    def __enter__(self) -> "ExecutionSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Executor(ABC):
    """One placement strategy for rank programs (see module docstring)."""

    #: Registry name (set by :func:`register_executor`).
    name: str = ""

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers

    @abstractmethod
    def launch(self, plan: EnginePlan) -> ExecutionSession:
        """Build the per-rank engines and return a steppable session."""


# ----------------------------------------------------------------------
# The serial reference executor
# ----------------------------------------------------------------------
class _SerialSession(ExecutionSession):
    """All ranks in one engine behind a VirtualComm — the seed path."""

    def __init__(self, engine: "NumericEngine", schedule: "Schedule") -> None:
        self.engine = engine
        self._schedule = schedule

    def step(self) -> float:
        self.engine.execute(self._schedule)
        return self.engine.iteration_cost()

    def close(self) -> None:
        self.engine.close()

    def volumes(self) -> List[np.ndarray]:
        return self.engine.volumes()

    def probe(self) -> Optional[np.ndarray]:
        return self.engine.current_probe()

    @property
    def messages(self) -> int:
        return self.engine.comm.sent_messages

    @property
    def message_bytes(self) -> int:
        return int(self.engine.comm.sent_bytes)

    @property
    def per_rank_peaks(self) -> List[int]:
        return self.engine.memory.per_rank_peaks()


class SerialExecutor(Executor):
    """The in-process reference: every rank in one sequential engine.

    ``workers`` is accepted for interface uniformity and ignored (there
    is exactly one OS thread of execution by construction).
    """

    def launch(self, plan: EnginePlan) -> ExecutionSession:
        from repro.core.engine import NumericEngine

        engine = NumericEngine(
            plan.dataset,
            plan.decomp,
            lr=plan.lr,
            compensate_local=plan.compensate_local,
            initial_probe=plan.initial_probe,
            refine_probe=plan.refine_probe,
            initial_volume=plan.initial_volume,
            backend=plan.backend,
            dtype=plan.dtype,
            data_source=plan.data_source,
            batch_size=plan.batch_size,
            prefetch=plan.prefetch,
            probe_modes=plan.probe_modes,
        )
        return _SerialSession(engine, plan.schedule)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Executor]] = {}


def register_executor(
    name: str, *, overwrite: bool = False
) -> Callable[[Type[Executor]], Type[Executor]]:
    """Class decorator registering an executor under ``name`` (mirrors
    :func:`repro.backend.register_backend`)."""
    if not isinstance(name, str) or not name:
        raise ValueError("executor name must be a non-empty string")

    def decorator(cls: Type[Executor]) -> Type[Executor]:
        if not callable(getattr(cls, "launch", None)):
            raise TypeError(
                f"cannot register {cls.__name__!r}: executors must define "
                "launch(plan)"
            )
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"executor {name!r} is already registered "
                f"(by {_REGISTRY[name].__name__}); pass overwrite=True "
                "to replace"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def unregister_executor(name: str) -> None:
    """Remove a registration (mainly for tests and plugin teardown)."""
    if name not in _REGISTRY:
        raise UnknownExecutorError(_unknown_message(name))
    del _REGISTRY[name]


def executor_names() -> List[str]:
    """Sorted names of all registered executors."""
    return sorted(_REGISTRY)


def get_executor(name: str) -> Type[Executor]:
    """The executor class registered under ``name``."""
    try:
        return _REGISTRY[str(name)]
    except KeyError:
        raise UnknownExecutorError(_unknown_message(str(name))) from None


def default_executor_name() -> str:
    """The ambient executor name (``REPRO_EXECUTOR`` or ``serial``)."""
    return os.environ.get(ENV_EXECUTOR, DEFAULT_EXECUTOR_NAME)


def resolve_executor(
    spec: Union[str, Executor, None] = None,
    workers: Optional[int] = None,
) -> Executor:
    """Explicit spec → executor; ``None`` → ``REPRO_EXECUTOR`` env var
    or the ``serial`` default.

    The precedence rule is the backend rule: an *explicit* executor —
    a constructor argument, a pinned config field — always wins over
    the environment; the environment only fills the ambient gap.

    An already-constructed ``Executor`` instance carries its own worker
    configuration, so combining one with ``workers=`` is a conflict and
    raises rather than silently ignoring either side.
    """
    if isinstance(spec, Executor):
        if workers is not None and workers != spec.workers:
            raise ValueError(
                f"workers={workers} conflicts with the supplied "
                f"{type(spec).__name__} instance "
                f"(workers={spec.workers}); configure the instance or "
                "pass a registry name"
            )
        return spec
    if spec is None:
        spec = default_executor_name()
    cls = get_executor(spec)
    return cls(workers=workers)


def _unknown_message(name: str) -> str:
    registered = ", ".join(executor_names()) or "(none)"
    return f"unknown executor {name!r}; registered executors: {registered}"


register_executor("serial")(SerialExecutor)
