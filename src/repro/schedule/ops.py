"""Operation types of the schedule IR.

Each op carries:

* ``uid`` — unique integer id within its :class:`Schedule`;
* ``deps`` — uids of ops that must complete first (data dependencies);
* the rank(s) it runs on and its payload description.

Dependencies express *data-flow*, not rank program order; per-rank program
order (which models an SPMD MPI program where each rank executes its ops in
sequence) is the order ops appear in the schedule filtered by rank.  The
timing interpreter uses both: a rank cannot start its next op before
finishing the previous one (program order) nor before its dependencies'
results have arrived (data flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.utils.geometry import Rect

__all__ = [
    "Op",
    "ComputeGradients",
    "BufferExchange",
    "AllReduceGradient",
    "ApplyBufferUpdate",
    "ResetBuffer",
    "LocalSolve",
    "VoxelPaste",
    "Barrier",
    "ProbeSync",
    "ApplyProbeUpdate",
    "OrthogonalizeProbe",
    "Schedule",
]


@dataclass
class Op:
    """Base class for schedule operations."""

    uid: int = field(init=False, default=-1)
    deps: List[int] = field(init=False, default_factory=list)

    def ranks(self) -> Tuple[int, ...]:
        """Ranks that execute (part of) this op."""
        raise NotImplementedError


@dataclass
class ComputeGradients(Op):
    """Rank ``rank`` evaluates individual gradients for a run of its local
    probe indices, accumulating them into its gradient buffer.

    ``local_update`` selects Algorithm 1 semantics: after each probe the
    tile is immediately updated with the *local* gradient (line 8) in
    addition to the buffer accumulation (line 7).  Synchronous mode sets it
    False, leaving all updating to :class:`ApplyBufferUpdate`.
    """

    rank: int
    probe_indices: Tuple[int, ...]
    local_update: bool = True

    def ranks(self) -> Tuple[int, ...]:
        return (self.rank,)


@dataclass
class BufferExchange(Op):
    """Point-to-point gradient-buffer exchange over an overlap region.

    ``mode='add'`` implements a forward-pass step (dst buffer += src buffer
    over ``region``); ``mode='replace'`` implements a backward-pass step
    (dst buffer  = src buffer over ``region``).  ``region`` is in global
    image coordinates and must lie inside both ranks' extended tiles.
    """

    src: int
    dst: int
    region: Rect
    mode: str = "add"
    tag: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("add", "replace"):
            raise ValueError(f"unknown exchange mode {self.mode!r}")

    def ranks(self) -> Tuple[int, ...]:
        return (self.src, self.dst)

    @property
    def message_voxels(self) -> int:
        """Pixels per slice transferred (multiply by slices x itemsize for
        bytes; the engines know the volume depth)."""
        return self.region.area


@dataclass
class AllReduceGradient(Op):
    """Global sum of all gradient buffers (the non-APPP alternative the
    paper argues against, Sec. V).  Numerically equivalent to a complete
    set of forward/backward passes; the event simulator charges it the
    full-volume ring-allreduce cost."""

    n_ranks: int

    def ranks(self) -> Tuple[int, ...]:
        return tuple(range(self.n_ranks))


@dataclass
class ApplyBufferUpdate(Op):
    """Rank updates its tile from its (accumulated) gradient buffer:
    ``V_k <- V_k - lr * AccBuf_k`` (Alg. 1 lines 14-15)."""

    rank: int
    lr: float

    def ranks(self) -> Tuple[int, ...]:
        return (self.rank,)


@dataclass
class ResetBuffer(Op):
    """Zero the rank's accumulation buffer (Alg. 1 line 16)."""

    rank: int

    def ranks(self) -> Tuple[int, ...]:
        return (self.rank,)


@dataclass
class LocalSolve(Op):
    """Halo-Voxel-Exchange local phase: the rank sweeps its assigned probe
    locations (own + extra neighbours) doing SGD updates on its extended
    tile, with no communication (paper Sec. II-C)."""

    rank: int
    probe_indices: Tuple[int, ...]
    lr: float

    def ranks(self) -> Tuple[int, ...]:
        return (self.rank,)


@dataclass
class VoxelPaste(Op):
    """Halo-Voxel-Exchange synchronization: ``src``'s *core* voxels in
    ``region`` are copy-pasted into ``dst``'s halo (synchronous
    point-to-point, the operation that causes seam artifacts)."""

    src: int
    dst: int
    region: Rect
    tag: int = 0

    def ranks(self) -> Tuple[int, ...]:
        return (self.src, self.dst)


@dataclass
class Barrier(Op):
    """Global synchronization point across all ranks (used by the
    non-pipelined planners)."""

    n_ranks: int

    def ranks(self) -> Tuple[int, ...]:
        return tuple(range(self.n_ranks))


@dataclass
class ProbeSync(Op):
    """All-reduce of the per-rank probe gradients (probe refinement).

    The probe is a *global* quantity (one detector-sized array), so —
    unlike the image gradient — an all-reduce is the natural and cheap
    synchronization for it.  Extension beyond the paper."""

    n_ranks: int

    def ranks(self) -> Tuple[int, ...]:
        return tuple(range(self.n_ranks))


@dataclass
class ApplyProbeUpdate(Op):
    """Rank updates its probe copy from the synchronized probe gradient
    (``p <- p - lr * grad``) and clears the gradient."""

    rank: int
    lr: float

    def ranks(self) -> Tuple[int, ...]:
        return (self.rank,)


@dataclass
class OrthogonalizeProbe(Op):
    """Rank re-orthogonalizes its probe *mode stack* (mixed-state runs).

    Scheduled once per sweep after :class:`ApplyProbeUpdate` when the
    probe has more than one incoherent mode: the gradient step degrades
    pairwise orthogonality, and the SVD relaxation restores it (energy-
    ordered, span-preserving — see
    :func:`repro.physics.probe.orthogonalize_modes`).  Rank-local and
    deterministic: every rank holds the identical synchronized probe, so
    per-rank execution needs no communication.  Never scheduled for
    single-mode runs (the M=1 path must stay bit-identical to the
    scalar one)."""

    rank: int

    def ranks(self) -> Tuple[int, ...]:
        return (self.rank,)


class Schedule:
    """An ordered list of ops forming a DAG.

    Ops are appended in a valid topological order by construction (builders
    only depend on already-appended ops), so the numeric engine can simply
    execute front to back.  :meth:`validate` checks the invariant.
    """

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = n_ranks
        self._ops: List[Op] = []

    # ------------------------------------------------------------------
    def add(self, op: Op, deps: Sequence[int] = ()) -> int:
        """Append ``op`` with dependencies ``deps``; returns its uid."""
        for d in deps:
            if not (0 <= d < len(self._ops)):
                raise ValueError(f"dependency uid {d} not yet in schedule")
        for r in op.ranks():
            if not (0 <= r < self.n_ranks):
                raise ValueError(f"op rank {r} out of range [0,{self.n_ranks})")
        op.uid = len(self._ops)
        op.deps = list(deps)
        self._ops.append(op)
        return op.uid

    @property
    def ops(self) -> List[Op]:
        """All ops in topological order."""
        return list(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops)

    def __getitem__(self, uid: int) -> Op:
        return self._ops[uid]

    # ------------------------------------------------------------------
    def rank_program(self, rank: int) -> List[Op]:
        """The SPMD program of one rank: its ops in schedule order."""
        return [op for op in self._ops if rank in op.ranks()]

    def validate(self) -> None:
        """Check the topological invariant (deps precede dependents)."""
        for op in self._ops:
            for d in op.deps:
                if d >= op.uid:
                    raise ValueError(
                        f"op {op.uid} depends on later op {d}: not topological"
                    )

    def counts(self) -> Dict[str, int]:
        """Histogram of op types (diagnostics / tests)."""
        out: Dict[str, int] = {}
        for op in self._ops:
            name = type(op).__name__
            out[name] = out.get(name, 0) + 1
        return out

    def message_stats(self, bytes_per_pixel: float) -> Tuple[int, float]:
        """``(n_messages, total_bytes)`` of all point-to-point exchanges."""
        n = 0
        total = 0.0
        for op in self._ops:
            if isinstance(op, (BufferExchange, VoxelPaste)):
                n += 1
                total += op.region.area * bytes_per_pixel
        return n, total
