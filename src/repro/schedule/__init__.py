"""Schedule intermediate representation.

A reconstruction iteration compiles to a list of :class:`~repro.schedule.ops.Op`
nodes with explicit dependencies — one program, two interpreters:

* the **numeric engine** (:mod:`repro.core.engine`) runs the ops on real
  NumPy arrays and produces actual reconstructions;
* the **event simulator** (:mod:`repro.parallel.event_sim`) runs the same
  ops under a machine model and produces the timing/Fig. 7b breakdowns.

Keeping a single source of truth for the communication pattern is what
makes the timing results faithful to the algorithm that was actually
validated numerically.
"""

from repro.schedule.ops import (
    AllReduceGradient,
    ApplyBufferUpdate,
    ApplyProbeUpdate,
    Barrier,
    BufferExchange,
    ComputeGradients,
    LocalSolve,
    Op,
    ProbeSync,
    ResetBuffer,
    Schedule,
    VoxelPaste,
)

__all__ = [
    "Op",
    "Schedule",
    "ComputeGradients",
    "BufferExchange",
    "AllReduceGradient",
    "ApplyBufferUpdate",
    "ResetBuffer",
    "LocalSolve",
    "VoxelPaste",
    "Barrier",
    "ProbeSync",
    "ApplyProbeUpdate",
]
