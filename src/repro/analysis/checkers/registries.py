"""``registry-reachable``: registered names actually reach the CLI.

The plugin registries (``register_solver`` / ``register_backend`` /
``register_executor``) only run their registrations when the defining
module is imported — a solver registered in a module nothing imports is
silently absent from ``repro reconstruct --solver`` choices.  And a CLI
argument whose ``choices=`` is a hard-coded list goes stale the moment
someone registers a new name.  This rule flags both:

* a module that calls a ``register_*`` decorator but is imported by no
  other module in the tree (and is not a package ``__init__``);
* an ``add_argument`` for ``--solver``/``--backend``/``--executor`` in
  the CLI whose ``choices`` is a literal list instead of the registry's
  ``*_names()`` function.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.model import Finding, Project

RULES = {
    "registry-reachable": (
        "every register_solver/backend/executor registration lives in "
        "an imported module, and CLI choices come from the registry's "
        "*_names() functions, not hard-coded lists"
    ),
}

_REGISTER_FUNCS = {
    "register_solver",
    "register_backend",
    "register_executor",
}
_REGISTRY_FLAGS = {"--solver", "--algorithm", "--backend", "--executor"}
CLI_MODULE = "repro.cli"

HINT_IMPORT = (
    "import the module from its package __init__ (or wherever the "
    "registry is assembled) so the registration executes"
)
HINT_CHOICES = (
    "use solver_names()/backend_names()/executor_names() for choices= "
    "so new registrations appear automatically; a deliberately narrower "
    "list needs '# repro-lint: allow[registry-reachable] -- <why>'"
)


def _decorator_name(dec: ast.AST) -> str:
    if isinstance(dec, ast.Call):
        dec = dec.func
    if isinstance(dec, ast.Name):
        return dec.id
    if isinstance(dec, ast.Attribute):
        return dec.attr
    return ""


def _imported_modules(project: Project) -> Set[str]:
    """Every dotted module name imported anywhere in the tree."""
    imported: Set[str] = set()
    for _, pf in project.modules():
        if pf.tree is None:
            continue
        for node in ast.walk(pf.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    imported.add(name.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                imported.add(node.module)
                for name in node.names:
                    # `from repro.backend import cupy_backend`
                    imported.add(f"{node.module}.{name.name}")
    return imported


def _registrations(project: Project) -> List[Tuple[str, str, str, int]]:
    """(module, registry-func, registered-name, lineno) tuples."""
    out = []
    for module, pf in project.modules():
        if pf.tree is None:
            continue
        for node in ast.walk(pf.tree):
            if not isinstance(node, (ast.ClassDef, ast.FunctionDef)):
                continue
            for dec in node.decorator_list:
                func = _decorator_name(dec)
                if func not in _REGISTER_FUNCS:
                    continue
                reg_name = "?"
                if isinstance(dec, ast.Call) and dec.args:
                    first = dec.args[0]
                    if isinstance(first, ast.Constant) and isinstance(
                        first.value, str
                    ):
                        reg_name = first.value
                out.append((module, func, reg_name, dec.lineno))
    return out


def _check_cli_choices(project: Project) -> Iterator[Finding]:
    pf = project.module(CLI_MODULE)
    if pf is None or pf.tree is None:
        return
    for node in ast.walk(pf.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "add_argument"
        ):
            continue
        flags = {
            arg.value
            for arg in node.args
            if isinstance(arg, ast.Constant)
            and isinstance(arg.value, str)
        }
        hit = flags & _REGISTRY_FLAGS
        if not hit:
            continue
        for kw in node.keywords:
            if kw.arg != "choices":
                continue
            if isinstance(kw.value, (ast.List, ast.Tuple, ast.Set)):
                yield Finding(
                    path=pf.rel,
                    line=kw.value.lineno,
                    rule="registry-reachable",
                    message=(
                        f"{sorted(hit)[0]} uses a hard-coded choices "
                        "list; it will go stale when a new name is "
                        "registered"
                    ),
                    hint=HINT_CHOICES,
                )


def check(project: Project) -> Iterator[Finding]:
    imported = _imported_modules(project)
    for module, func, reg_name, lineno in _registrations(project):
        pf = project.module(module)
        is_package_init = pf is not None and pf.rel.endswith(
            "__init__.py"
        )
        if is_package_init or module == CLI_MODULE:
            continue
        if module in imported:
            continue
        yield Finding(
            path=pf.rel if pf else module,
            line=lineno,
            rule="registry-reachable",
            message=(
                f"{func}({reg_name!r}) lives in {module}, which no "
                "other module imports — the registration never runs"
            ),
            hint=HINT_IMPORT,
        )
    yield from _check_cli_choices(project)
