"""``lock-blocking`` / ``lock-order``: registry-lock discipline.

Registry locks (``_LOCK``, ``self._lock``, ``self._cond`` …) guard
in-memory tables that every thread touches; holding one across blocking
work (file I/O, ``close()``, ``join()``, ``sleep``, queue waits) stalls
the whole process, and acquiring two locks in opposite orders in
different call paths deadlocks it.

``lock-blocking`` flags blocking calls lexically inside a
``with <lock>:`` block, including **one level** of call propagation:
a call to a same-module function, a ``self.<method>``, or an imported
project function (``jobstore.load_record``) that itself performs
blocking I/O is flagged at the call site.  ``<lock>.wait()`` on the
*held* lock is the condition-variable idiom and exempt.  The rare
correct exception (reading state under the condition that guards its
writes, to avoid missed wakeups) carries a justified
``# repro-lint: allow[lock-blocking]`` pragma.

``lock-order`` builds the acquisition graph from nested ``with`` blocks
(again with one level of call propagation) and rejects cycles.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.model import Finding, ParsedFile, Project

RULES = {
    "lock-blocking": (
        "no blocking calls (I/O, close/join/sleep, queue waits) while "
        "holding a registry lock; condition-variable wait() on the held "
        "lock is the one exemption"
    ),
    "lock-order": (
        "lock acquisition order is globally consistent — the nested "
        "with-lock graph must be acyclic"
    ),
}

_BLOCKING_ATTRS = {
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
    "close",
    "recv",
    "send",
    "sendall",
    "connect",
}

HINT_BLOCKING = (
    "restructure so the blocking work happens outside the lock (evict "
    "under the lock, act on the evicted object after releasing — see "
    "repro.backend.base._evict_locked)"
)
HINT_ORDER = (
    "pick one global acquisition order for these locks and nest "
    "consistently everywhere"
)


def _lock_name(expr: ast.AST) -> Optional[str]:
    """Canonical lock name when ``expr`` looks like a lock, else None."""
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    else:
        return None
    low = name.lower()
    if low in ("_lock", "_cond", "lock", "cond") or low.endswith(
        ("_lock", "_cond")
    ):
        return name
    return None


def _walk_no_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function bodies —
    a callback *defined* under a lock does not *run* under it."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name → dotted project-module/function origin."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


def _direct_blocking(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Describe why ``call`` blocks, or None if it does not."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open()"
        if aliases.get(func.id) == "time.sleep":
            return "time.sleep()"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    recv = ast.unparse(func.value)
    if (
        isinstance(func.value, ast.Name)
        and aliases.get(func.value.id) == "time"
        and func.attr == "sleep"
    ):
        return "time.sleep()"
    if func.attr in _BLOCKING_ATTRS:
        return f"{recv}.{func.attr}()"
    if func.attr == "join":
        # str.join takes exactly one positional argument; thread/process
        # join takes none (or a timeout keyword).
        if not call.args:
            return f"{recv}.join()"
        return None
    if func.attr == "wait":
        return f"{recv}.wait()"
    if func.attr in ("get", "put"):
        has_timeout = any(kw.arg == "timeout" for kw in call.keywords)
        if has_timeout or "queue" in recv.lower():
            return f"{recv}.{func.attr}()"
    return None


class _FunctionIndex:
    """Per-module function defs + which of them block directly (the one
    level of cross-function/cross-module propagation)."""

    def __init__(self, project: Project) -> None:
        self.defs: Dict[Tuple[str, str], ast.AST] = {}
        self.blocking: Dict[Tuple[str, str], str] = {}
        self.locks_acquired: Dict[Tuple[str, str], Set[str]] = {}
        for module, pf in project.modules():
            if pf.tree is None:
                continue
            aliases = _module_aliases(pf.tree)
            for fn in pf.functions():
                key = (module, fn.name)
                self.defs[key] = fn
                for node in _walk_no_functions(fn):
                    if isinstance(node, ast.Call):
                        why = _direct_blocking(node, aliases)
                        if why and key not in self.blocking:
                            self.blocking[key] = why
                    if isinstance(node, ast.With):
                        for item in node.items:
                            lock = _lock_name(item.context_expr)
                            if lock:
                                self.locks_acquired.setdefault(
                                    key, set()
                                ).add(lock)

    def blocking_reason(
        self, module: str, call: ast.Call, aliases: Dict[str, str]
    ) -> Optional[Tuple[str, str]]:
        """(callee-name, why) when ``call`` targets a project function
        known to block, else None."""
        func = call.func
        if isinstance(func, ast.Name):
            # local function, or a from-imported project function
            key = (module, func.id)
            if key in self.blocking:
                return func.id, self.blocking[key]
            origin = aliases.get(func.id)
            if origin and "." in origin:
                mod, _, name = origin.rpartition(".")
                if (mod, name) in self.blocking:
                    return origin, self.blocking[(mod, name)]
        elif isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id != "self"
            ):
                mod = aliases.get(func.value.id)
                if mod and (mod, func.attr) in self.blocking:
                    return (
                        f"{func.value.id}.{func.attr}",
                        self.blocking[(mod, func.attr)],
                    )
            elif (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                key = (module, func.attr)
                if key in self.blocking:
                    return f"self.{func.attr}", self.blocking[key]
        return None

    def callee_locks(
        self, module: str, call: ast.Call, aliases: Dict[str, str]
    ) -> Set[str]:
        func = call.func
        if isinstance(func, ast.Name):
            key = (module, func.id)
            if key in self.locks_acquired:
                return self.locks_acquired[key]
            origin = aliases.get(func.id)
            if origin and "." in origin:
                mod, _, name = origin.rpartition(".")
                return self.locks_acquired.get((mod, name), set())
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            if func.value.id == "self":
                return self.locks_acquired.get((module, func.attr), set())
            mod = aliases.get(func.value.id)
            if mod:
                return self.locks_acquired.get((mod, func.attr), set())
        return set()


def _check_with_block(
    pf: ParsedFile,
    module: str,
    node: ast.With,
    locks: List[Tuple[str, str]],
    aliases: Dict[str, str],
    index: _FunctionIndex,
    edges: Dict[Tuple[str, str], Tuple[str, int]],
) -> Iterator[Finding]:
    lock_texts = {text for _, text in locks}
    stack: List[ast.AST] = [stmt for stmt in node.body]
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(child, ast.With):
            inner = [
                name
                for item in child.items
                for name in [_lock_name(item.context_expr)]
                if name
            ]
            if inner:
                held = locks[-1][0]
                if inner[0] != held:
                    edges.setdefault(
                        (held, inner[0]), (pf.rel, child.lineno)
                    )
                # the inner lock block is checked on its own visit
                continue
        stack.extend(ast.iter_child_nodes(child))
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        # condition-variable calls on the held lock are the idiom,
        # not a violation
        if isinstance(func, ast.Attribute) and ast.unparse(
            func.value
        ) in lock_texts:
            continue
        why = _direct_blocking(child, aliases)
        callee = None
        if why is None:
            hit = index.blocking_reason(module, child, aliases)
            if hit is not None:
                callee, why = hit
        if why is None:
            # one-level lock-order propagation through project calls
            held = locks[-1][0] if locks else None
            if held:
                for acquired in index.callee_locks(module, child, aliases):
                    if acquired != held:
                        edges.setdefault(
                            (held, acquired), (pf.rel, child.lineno)
                        )
            continue
        detail = (
            f"{why} while holding {locks[-1][1]}"
            if callee is None
            else f"call to {callee}() (which does {why}) while holding "
            f"{locks[-1][1]}"
        )
        yield Finding(
            path=pf.rel,
            line=child.lineno,
            rule="lock-blocking",
            message=detail,
            hint=HINT_BLOCKING,
        )


def _find_cycles(
    edges: Dict[Tuple[str, str], Tuple[str, int]]
) -> List[Tuple[str, str]]:
    graph: Dict[str, Set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)

    cyclic: List[Tuple[str, str]] = []

    def reachable(start: str, target: str) -> bool:
        seen = set()
        stack = [start]
        while stack:
            cur = stack.pop()
            if cur == target:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(graph.get(cur, ()))
        return False

    for a, b in edges:
        if reachable(b, a):
            cyclic.append((a, b))
    return cyclic


def check(project: Project) -> Iterator[Finding]:
    index = _FunctionIndex(project)
    edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
    for module, pf in project.modules():
        if pf.tree is None:
            continue
        aliases = _module_aliases(pf.tree)
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.With):
                continue
            locks = [
                (name, ast.unparse(item.context_expr))
                for item in node.items
                for name in [_lock_name(item.context_expr)]
                if name
            ]
            if not locks:
                continue
            for i in range(len(locks) - 1):
                edges.setdefault(
                    (locks[i][0], locks[i + 1][0]), (pf.rel, node.lineno)
                )
            yield from _check_with_block(
                pf, module, node, locks, aliases, index, edges
            )
    for (a, b) in _find_cycles(edges):
        rel, lineno = edges[(a, b)]
        yield Finding(
            path=rel,
            line=lineno,
            rule="lock-order",
            message=(
                f"lock acquisition cycle: {a} is taken before {b} here, "
                f"but {b} is (transitively) taken before {a} elsewhere"
            ),
            hint=HINT_ORDER,
        )
