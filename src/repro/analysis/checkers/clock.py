"""``wall-clock``: no wall-clock reads in scheduling/telemetry code.

The job queue orders strictly by priority + monotonic aging and the
telemetry clock is ``time.perf_counter`` — wall clocks (``time.time``,
``datetime.now``) jump under NTP steps and DST, which would corrupt
queue ordering and span durations.  Modules under ``repro/service`` and
``repro/obs`` therefore may not call wall-clock functions at all; the
few legitimate human-facing timestamps (job ``submitted_at`` /
``started_at`` / ``finished_at``) carry
``# repro-lint: allow[wall-clock]`` pragmas with a justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.analysis.model import Finding, ParsedFile, Project

RULES = {
    "wall-clock": (
        "scheduling/telemetry code uses monotonic clocks only "
        "(time.time/datetime.now are banned under repro/service and "
        "repro/obs)"
    ),
}

#: Path prefixes (repo-relative, posix) the rule applies to.
SCOPES = ("src/repro/service/", "src/repro/obs/")

_TIME_FUNCS = {"time", "ctime", "localtime", "gmtime", "strftime"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}

HINT = (
    "use time.perf_counter()/time.monotonic() for ordering and "
    "durations; human-facing timestamps need "
    "'# repro-lint: allow[wall-clock] -- <why>'"
)


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local name → dotted origin for every import in the module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


def _check_file(pf: ParsedFile) -> Iterator[Finding]:
    aliases = _import_aliases(pf.tree)
    for node in ast.walk(pf.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        origin = None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = aliases.get(func.value.id)
            if base == "time" and func.attr in _TIME_FUNCS:
                origin = f"time.{func.attr}"
            elif (
                base in ("datetime.datetime", "datetime.date")
                and func.attr in _DATETIME_FUNCS
            ):
                origin = f"{base}.{func.attr}"
            elif base == "datetime" and func.attr in _DATETIME_FUNCS:
                # datetime.datetime accessed as datetime.<cls>.<meth> is
                # handled below; `import datetime; datetime.now` is not
                # valid, but guard anyway.
                origin = f"datetime.{func.attr}"
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Attribute
        ):
            # datetime.datetime.now() with `import datetime`
            inner = func.value
            if (
                isinstance(inner.value, ast.Name)
                and aliases.get(inner.value.id) == "datetime"
                and inner.attr in ("datetime", "date")
                and func.attr in _DATETIME_FUNCS
            ):
                origin = f"datetime.{inner.attr}.{func.attr}"
        elif isinstance(func, ast.Name):
            base = aliases.get(func.id)
            if base in (
                "time.time",
                "time.ctime",
                "time.localtime",
                "time.gmtime",
                "time.strftime",
            ):
                origin = base
        if origin is not None:
            yield Finding(
                path=pf.rel,
                line=node.lineno,
                rule="wall-clock",
                message=(
                    f"{origin}() reads the wall clock inside "
                    "scheduling/telemetry code"
                ),
                hint=HINT,
            )


def check(project: Project) -> Iterator[Finding]:
    for pf in project.files:
        if pf.tree is None or not pf.rel.startswith(SCOPES):
            continue
        yield from _check_file(pf)
