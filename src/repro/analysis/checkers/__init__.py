"""Checker registry for repro-lint.

Each checker module exposes ``RULES`` (``{rule_id: one-line invariant}``)
and ``check(project) -> Iterable[Finding]``.  Adding a checker means
writing such a module and listing it here — the engine, CLI ``--rules``
filter, docs table, and fixture tests all iterate this registry.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.checkers import (
    atomic,
    clock,
    fingerprint,
    imports,
    locks,
    registries,
    telemetry,
)

__all__ = ["ALL_CHECKERS", "ALL_RULES"]

ALL_CHECKERS = [
    clock,
    atomic,
    imports,
    locks,
    fingerprint,
    registries,
    telemetry,
]

ALL_RULES: Dict[str, str] = {}
for _checker in ALL_CHECKERS:
    for _rule, _doc in _checker.RULES.items():
        if _rule in ALL_RULES:  # pragma: no cover - registry bug
            raise RuntimeError(f"duplicate repro-lint rule id {_rule!r}")
        ALL_RULES[_rule] = _doc


def rules_of(checker) -> List[str]:
    return sorted(checker.RULES)
