"""``telemetry-guard``: recording sites guard on ``.enabled`` first.

The telemetry contract (see :mod:`repro.obs.telemetry`) is that a
disabled run pays *nothing*: every instrumented hot path checks
``current().enabled`` before building span arguments or counter dicts.
A ``tel.span(...)`` / ``tel.count(...)`` / ``tel.add(...)`` on a
``current()``-derived recorder that is not under an ``.enabled`` guard
silently taxes every un-traced run.

Recorders that arrive as *function parameters* are exempt (the caller
guarded — the ``_count_fft`` helper pattern), as are recorders built
directly via ``Telemetry()`` (a constructed recorder is enabled by
construction).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.model import Finding, ParsedFile, Project

RULES = {
    "telemetry-guard": (
        "span/count/add calls on a current()-derived recorder are "
        "guarded by `.enabled` (early return or enclosing if)"
    ),
}

_RECORD_ATTRS = {"span", "count", "add"}

HINT = (
    "guard the site: `if tel.enabled:` around it, or `if not "
    "tel.enabled: return` at function entry — disabled runs must pay "
    "zero telemetry cost"
)


def _assigned_receivers(fn: ast.AST) -> Set[str]:
    """Receiver texts bound from ``current()`` within ``fn``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        func = node.value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name != "current":
            continue
        for target in node.targets:
            if isinstance(target, (ast.Name, ast.Attribute)):
                out.add(ast.unparse(target))
    return out


def _constructed_receivers(fn: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        func = node.value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name in ("Telemetry", "NullTelemetry"):
            for target in node.targets:
                if isinstance(target, (ast.Name, ast.Attribute)):
                    out.add(ast.unparse(target))
    return out


def _param_names(fn: ast.AST) -> Set[str]:
    args = fn.args
    names = {a.arg for a in args.args + args.kwonlyargs + args.posonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _guard_tests(fn: ast.AST) -> List[ast.AST]:
    """Every If/IfExp/While test node inside ``fn``."""
    return [
        node.test
        for node in ast.walk(fn)
        if isinstance(node, (ast.If, ast.IfExp, ast.While))
    ]


def _is_guarded(
    pf: ParsedFile, fn: ast.AST, call: ast.Call, recv: str
) -> bool:
    needle = f"{recv}.enabled"
    # (a) an enclosing if/ifexp/while mentions `<recv>.enabled`
    for anc in pf.ancestors(call):
        if anc is fn:
            break
        if isinstance(anc, (ast.If, ast.IfExp, ast.While)):
            if needle in ast.unparse(anc.test):
                return True
    # (b) an earlier `if not <recv>.enabled:` early exit in the function
    for node in ast.walk(fn):
        if not isinstance(node, ast.If) or node.lineno >= call.lineno:
            continue
        test_src = ast.unparse(node.test)
        if needle not in test_src or "not " not in test_src:
            continue
        exits = any(
            isinstance(stmt, (ast.Return, ast.Raise, ast.Continue))
            for body_stmt in node.body
            for stmt in ast.walk(body_stmt)
        )
        if exits:
            return True
    return False


def _check_function(pf: ParsedFile, fn: ast.AST) -> Iterator[Finding]:
    tracked = _assigned_receivers(fn)
    tracked.discard("self._obs")  # handled file-wide below
    exempt = _constructed_receivers(fn) | _param_names(fn)
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _RECORD_ATTRS
        ):
            continue
        recv = ast.unparse(func.value)
        if recv in exempt or recv.split(".")[0] in exempt:
            continue
        if recv not in tracked and recv != "self._obs":
            continue
        if recv == "self._obs" and not pf_tracks_obs(pf):
            continue
        if _is_guarded(pf, fn, node, recv):
            continue
        yield Finding(
            path=pf.rel,
            line=node.lineno,
            rule="telemetry-guard",
            message=(
                f"{recv}.{func.attr}(...) records telemetry without an "
                f"`{recv}.enabled` guard"
            ),
            hint=HINT,
        )


def pf_tracks_obs(pf: ParsedFile) -> bool:
    """True when the file ever binds ``self._obs`` from ``current()``."""
    cached = getattr(pf, "_obs_tracked", None)
    if cached is None:
        cached = any(
            "self._obs" in _assigned_receivers(fn)
            for fn in pf.functions()
        )
        pf._obs_tracked = cached
    return cached


def check(project: Project) -> Iterator[Finding]:
    for _, pf in project.modules():
        if pf.tree is None or pf.rel == "src/repro/obs/telemetry.py":
            continue
        for fn in pf.functions():
            yield from _check_function(pf, fn)
