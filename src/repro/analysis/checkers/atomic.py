"""``atomic-write``: durable-directory writes go through atomicio.

Job records, progress mirrors, result archives and telemetry dumps are
read concurrently from other processes and must survive a crash
mid-write — so every write under ``repro/service`` and ``repro/io``
must flow through :mod:`repro.utils.atomicio` (tmp sibling +
``os.replace``).  A raw ``open(path, "w")``, ``Path.write_text``,
``json.dump`` or ``np.savez*`` in those trees is a torn-file bug
waiting for a crash.

Writes lexically inside a ``with atomic_output(...)`` block are the
blessed pattern itself and are exempt, as are writes to ``*tmp*``-named
targets.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.model import Finding, ParsedFile, Project

RULES = {
    "atomic-write": (
        "files under durable directories (repro/service, repro/io) are "
        "published via repro.utils.atomicio (tmp + os.replace), never "
        "written in place"
    ),
}

SCOPES = ("src/repro/service/", "src/repro/io/")

_WRITE_METHODS = {"write_text", "write_bytes"}
_SAVEZ_METHODS = {"save", "savez", "savez_compressed"}

HINT = (
    "route the write through repro.utils.atomicio "
    "(atomic_write_json/atomic_write_text, or `with atomic_output(path) "
    "as tmp:` for binary formats)"
)


def _mode_of(call: ast.Call) -> Optional[str]:
    """The mode argument of an ``open()`` call, when statically known."""
    mode = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _inside_atomic_output(pf: ParsedFile, node: ast.AST) -> bool:
    for anc in pf.ancestors(node):
        if not isinstance(anc, ast.With):
            continue
        for item in anc.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                func = expr.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else ""
                )
                if name == "atomic_output":
                    return True
    return False


def _is_tmp_target(expr: ast.AST) -> bool:
    text = ast.unparse(expr).lower()
    return "tmp" in text or "temp" in text


def _check_file(pf: ParsedFile) -> Iterator[Finding]:
    for node in ast.walk(pf.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        finding = None
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _mode_of(node)
            if mode and any(c in mode for c in "wax"):
                if node.args and _is_tmp_target(node.args[0]):
                    continue
                finding = (
                    f"open(..., {mode!r}) writes in place in a durable "
                    "directory"
                )
        elif isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            if _is_tmp_target(func.value):
                continue
            finding = (
                f".{func.attr}() writes in place in a durable directory"
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "dump"
            and isinstance(func.value, ast.Name)
            and func.value.id == "json"
        ):
            finding = "json.dump() writes in place in a durable directory"
        elif isinstance(func, ast.Attribute) and func.attr in _SAVEZ_METHODS:
            base = func.value
            if isinstance(base, ast.Name) and base.id in ("np", "numpy"):
                if node.args and _is_tmp_target(node.args[0]):
                    continue
                finding = (
                    f"np.{func.attr}() writes in place in a durable "
                    "directory"
                )
        if finding is None:
            continue
        if _inside_atomic_output(pf, node):
            continue
        yield Finding(
            path=pf.rel,
            line=node.lineno,
            rule="atomic-write",
            message=finding,
            hint=HINT,
        )


def check(project: Project) -> Iterator[Finding]:
    for pf in project.files:
        if pf.tree is None or not pf.rel.startswith(SCOPES):
            continue
        yield from _check_file(pf)
