"""``fingerprint-knob``: every config field declares its fingerprint role.

:meth:`repro.api.config.ReconstructionConfig.fingerprint` is the
identity resume validation trusts — a checkpoint refuses to seed a run
with a different fingerprint.  A new config field that nobody sorts
into the numeric/neutral declaration is a silent correctness hole: it
would neither perturb the fingerprint nor be proven not to need to.
This rule mechanically requires every ``ReconstructionConfig`` field to
appear in **exactly one** of ``_FINGERPRINT_NUMERIC_FIELDS`` and
``_FINGERPRINT_NEUTRAL_FIELDS`` in ``repro/api/config.py``, and every
member of those sets to be a real field.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.model import Finding, ParsedFile, Project

RULES = {
    "fingerprint-knob": (
        "every ReconstructionConfig field is declared in exactly one of "
        "_FINGERPRINT_NUMERIC_FIELDS / _FINGERPRINT_NEUTRAL_FIELDS"
    ),
}

CONFIG_MODULE = "repro.api.config"
CONFIG_CLASS = "ReconstructionConfig"
NUMERIC_SET = "_FINGERPRINT_NUMERIC_FIELDS"
NEUTRAL_SET = "_FINGERPRINT_NEUTRAL_FIELDS"

HINT = (
    f"add the field name to {NUMERIC_SET} (it changes the solver "
    f"arithmetic / compute stack) or {NEUTRAL_SET} (provably "
    "fingerprint-identical) in repro/api/config.py"
)


def _literal_strings(node: ast.AST) -> Optional[Set[str]]:
    """The string members of a frozenset({...}) / {...} literal."""
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name != "frozenset" or len(node.args) != 1:
            return None
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        out = set()
        for elt in node.elts:
            if not (
                isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            ):
                return None
            out.add(elt.value)
        return out
    return None


def _find_sets(pf: ParsedFile) -> Dict[str, tuple]:
    """Map set-name → (members, lineno) for the fingerprint frozensets."""
    found: Dict[str, tuple] = {}
    for node in pf.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id in (NUMERIC_SET, NEUTRAL_SET):
            members = _literal_strings(node.value)
            found[target.id] = (members, node.lineno)
    return found


def _config_fields(pf: ParsedFile) -> Dict[str, int]:
    """Field name → lineno for the config dataclass's declared fields."""
    fields: Dict[str, int] = {}
    for node in pf.tree.body:
        if (
            isinstance(node, ast.ClassDef)
            and node.name == CONFIG_CLASS
        ):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields[stmt.target.id] = stmt.lineno
    return fields


def check(project: Project) -> Iterator[Finding]:
    pf = project.module(CONFIG_MODULE)
    if pf is None or pf.tree is None:
        return
    sets = _find_sets(pf)
    fields = _config_fields(pf)
    for set_name in (NUMERIC_SET, NEUTRAL_SET):
        if set_name not in sets:
            yield Finding(
                path=pf.rel,
                line=1,
                rule="fingerprint-knob",
                message=(
                    f"{set_name} is not declared as a string-literal "
                    "frozenset in repro/api/config.py"
                ),
                hint=HINT,
            )
            return
        if sets[set_name][0] is None:
            yield Finding(
                path=pf.rel,
                line=sets[set_name][1],
                rule="fingerprint-knob",
                message=(
                    f"{set_name} must be a literal frozenset of field-"
                    "name strings (the linter reads it statically)"
                ),
                hint=HINT,
            )
            return
    numeric, numeric_line = sets[NUMERIC_SET]
    neutral, neutral_line = sets[NEUTRAL_SET]
    if not fields:
        yield Finding(
            path=pf.rel,
            line=1,
            rule="fingerprint-knob",
            message=f"class {CONFIG_CLASS} with annotated fields not found",
            hint=HINT,
        )
        return
    for name, lineno in fields.items():
        in_numeric = name in numeric
        in_neutral = name in neutral
        if in_numeric and in_neutral:
            yield Finding(
                path=pf.rel,
                line=lineno,
                rule="fingerprint-knob",
                message=(
                    f"config field {name!r} appears in both "
                    f"{NUMERIC_SET} and {NEUTRAL_SET}"
                ),
                hint=HINT,
            )
        elif not in_numeric and not in_neutral:
            yield Finding(
                path=pf.rel,
                line=lineno,
                rule="fingerprint-knob",
                message=(
                    f"config field {name!r} is in neither "
                    f"{NUMERIC_SET} nor {NEUTRAL_SET} — its fingerprint "
                    "role is undeclared"
                ),
                hint=HINT,
            )
    for member in sorted(numeric - set(fields)):
        yield Finding(
            path=pf.rel,
            line=numeric_line,
            rule="fingerprint-knob",
            message=(
                f"{NUMERIC_SET} names {member!r}, which is not a "
                f"{CONFIG_CLASS} field"
            ),
            hint=HINT,
        )
    for member in sorted(neutral - set(fields)):
        yield Finding(
            path=pf.rel,
            line=neutral_line,
            rule="fingerprint-knob",
            message=(
                f"{NEUTRAL_SET} names {member!r}, which is not a "
                f"{CONFIG_CLASS} field"
            ),
            hint=HINT,
        )
