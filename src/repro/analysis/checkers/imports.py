"""``import-guard``: optional heavyweight deps never import eagerly.

``cupy``, ``h5py`` and ``mpi4py`` are deliberately not install
requirements — every module must stay importable on a box without them.
Imports of these packages must therefore be wrapped in ``try/except``
(the availability-probe idiom, see ``repro.backend.cupy_backend``) or
live inside a function body so they only execute when the optional path
is actually taken.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import Finding, Project

RULES = {
    "import-guard": (
        "optional dependencies (cupy, h5py, mpi4py) are imported only "
        "under try/except or inside function bodies"
    ),
}

GUARDED_PACKAGES = frozenset({"cupy", "h5py", "mpi4py"})

HINT = (
    "wrap the import in try/except ImportError (module-level "
    "availability probe) or move it into the function that needs it"
)


def check(project: Project) -> Iterator[Finding]:
    for pf in project.files:
        if pf.tree is None:
            continue
        for node in ast.walk(pf.tree):
            if isinstance(node, ast.Import):
                roots = [n.name.split(".")[0] for n in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                roots = [node.module.split(".")[0]]
            else:
                continue
            hits = sorted(set(roots) & GUARDED_PACKAGES)
            if not hits:
                continue
            guarded = any(
                isinstance(
                    anc,
                    (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef),
                )
                for anc in pf.ancestors(node)
            )
            if guarded:
                continue
            yield Finding(
                path=pf.rel,
                line=node.lineno,
                rule="import-guard",
                message=(
                    f"unguarded module-level import of optional "
                    f"dependency {', '.join(hits)}"
                ),
                hint=HINT,
            )
