"""Committed-baseline support for repro-lint.

A baseline grandfathers *known* findings so the lint gate can be turned
on for a tree that is not yet clean: ``repro lint --write-baseline``
records every current finding's key, and later runs report only
findings **not** in the file.  Keys are ``path::rule::<stripped line
text>`` (no line numbers), so unrelated edits that move a grandfathered
line do not resurrect it.

New violations must be *fixed* or carry an inline
``# repro-lint: allow[rule] -- why`` pragma; the baseline is for debt
that predates the gate, not a dumping ground for new exceptions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Union

from repro.analysis.model import Finding
from repro.utils.atomicio import atomic_write_json

__all__ = ["DEFAULT_BASELINE_NAME", "load_baseline", "write_baseline"]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"
_SCHEMA = "repro-lint-baseline/1"


def load_baseline(path: Union[str, Path]) -> Set[str]:
    """Read a baseline file into the set of suppressed finding keys.

    A missing file is an empty baseline; a malformed one is an error
    (silently ignoring it would un-gate the build).
    """
    path = Path(path)
    if not path.exists():
        return set()
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
        raise ValueError(
            f"{path} is not a repro-lint baseline (expected schema "
            f"{_SCHEMA!r})"
        )
    entries = payload.get("entries", [])
    keys: Set[str] = set()
    for entry in entries:
        keys.add(
            f"{entry['path']}::{entry['rule']}::{entry.get('text', '')}"
        )
    return keys


def write_baseline(
    path: Union[str, Path], findings: Iterable[Finding]
) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries: List[dict] = []
    seen: Set[str] = set()
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        if f.baseline_key in seen:
            continue
        seen.add(f.baseline_key)
        entries.append({"path": f.path, "rule": f.rule, "text": f.text})
    atomic_write_json(
        Path(path),
        {"schema": _SCHEMA, "entries": entries},
        indent=2,
    )
    return len(entries)
