"""repro-lint: AST-based enforcement of this repo's correctness contracts.

The reproduction's trickiest invariants are not type errors — they are
*discipline* rules that unit tests only catch when a race or crash
actually fires: monotonic-only scheduling clocks, tmp+rename
publication of durable files, no blocking work under registry locks,
fingerprint-neutrality declarations for every config knob, guarded
optional imports, registry reachability, and pay-nothing-when-disabled
telemetry.  This package checks them mechanically, per commit.

Usage::

    python -m repro.analysis            # table output, exit 1 on findings
    repro lint --format json            # machine-readable (CI gate)
    repro lint --list-rules             # every rule id + invariant

Suppress a deliberate exception inline with
``# repro-lint: allow[<rule>] -- <justification>``; grandfather
pre-existing debt with ``repro lint --write-baseline``.  See
CONTRIBUTING.md for the rule-by-rule contract.
"""

from __future__ import annotations

from repro.analysis.checkers import ALL_RULES
from repro.analysis.engine import build_project, lint, main
from repro.analysis.model import Finding

__all__ = ["Finding", "ALL_RULES", "lint", "build_project", "main"]
