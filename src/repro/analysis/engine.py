"""repro-lint driver: collect files, run checkers, report findings.

Public surface:

* :func:`lint` — the library API: returns the post-pragma,
  post-baseline findings for a tree.
* :func:`main` — the CLI (``python -m repro.analysis`` and
  ``repro lint``): table or JSON output, ``--write-baseline``, and the
  exit-code contract (0 clean, 1 findings, 2 usage/parse error).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.analysis.checkers import ALL_CHECKERS, ALL_RULES
from repro.analysis.model import Finding, ParsedFile, Project

__all__ = ["lint", "build_project", "main"]

JSON_SCHEMA = "repro-lint/1"


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor holding ``src/repro`` (defaults to this file's
    own checkout, so the linter works from any CWD)."""
    candidates = []
    if start is not None:
        candidates.append(Path(start).resolve())
    candidates.append(Path.cwd())
    candidates.append(Path(__file__).resolve().parents[3])
    for base in candidates:
        for probe in (base, *base.parents):
            if (probe / "src" / "repro").is_dir():
                return probe
    raise FileNotFoundError(
        "cannot locate the repository root (no src/repro ancestor)"
    )


def build_project(
    root: Optional[Union[str, Path]] = None,
    paths: Optional[Sequence[Union[str, Path]]] = None,
) -> Project:
    """Parse the linted tree: ``src/repro/**/*.py`` by default, or the
    explicit ``paths`` (files or directories) when given."""
    root_path = find_repo_root(Path(root) if root else None)
    files: List[Path] = []
    if paths:
        for p in paths:
            p = Path(p)
            if not p.is_absolute():
                p = root_path / p
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            else:
                files.append(p)
    else:
        files = sorted((root_path / "src" / "repro").rglob("*.py"))
    parsed = []
    for path in files:
        if "__pycache__" in path.parts:
            continue
        rel = path.resolve().relative_to(root_path).as_posix()
        parsed.append(ParsedFile(path, rel))
    return Project(root=root_path, files=parsed)


def lint(
    root: Optional[Union[str, Path]] = None,
    paths: Optional[Sequence[Union[str, Path]]] = None,
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Union[str, Path]] = None,
    respect_pragmas: bool = True,
) -> List[Finding]:
    """Run every checker over the tree and return surviving findings.

    ``rules`` restricts to a subset of rule ids; ``baseline`` points at
    a committed baseline file whose entries are filtered out;
    ``respect_pragmas=False`` reports pragma-suppressed findings too
    (used by ``--write-baseline`` tooling and the fixture tests).
    """
    selected = set(rules) if rules is not None else set(ALL_RULES)
    unknown = selected - set(ALL_RULES)
    if unknown:
        raise ValueError(
            f"unknown rule ids {sorted(unknown)}; known: "
            f"{sorted(ALL_RULES)}"
        )
    project = build_project(root, paths)
    by_rel = {pf.rel: pf for pf in project.files}
    findings: List[Finding] = []
    for pf in project.files:
        if pf.syntax_error is not None:
            findings.append(
                Finding(
                    path=pf.rel,
                    line=pf.syntax_error.lineno or 1,
                    rule="parse-error",
                    message=f"syntax error: {pf.syntax_error.msg}",
                    text=pf.line_text(pf.syntax_error.lineno or 1),
                )
            )
    for checker in ALL_CHECKERS:
        if not set(checker.RULES) & selected:
            continue
        for finding in checker.check(project):
            if finding.rule not in selected:
                continue
            pf = by_rel.get(finding.path)
            if pf is not None:
                if respect_pragmas and pf.allows(
                    finding.line, finding.rule
                ):
                    continue
                finding = Finding(
                    path=finding.path,
                    line=finding.line,
                    rule=finding.rule,
                    message=finding.message,
                    hint=finding.hint,
                    text=pf.line_text(finding.line),
                )
            findings.append(finding)
    if baseline is not None:
        keys = load_baseline(baseline)
        findings = [f for f in findings if f.baseline_key not in keys]
    seen = set()
    unique: List[Finding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        marker = (f.path, f.line, f.rule)
        if marker in seen:
            continue
        seen.add(marker)
        unique.append(f)
    return unique


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _format_table(findings: List[Finding]) -> str:
    lines = []
    for f in findings:
        lines.append(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    lines.append(
        f"{len(findings)} finding(s)"
        if findings
        else "repro-lint: clean"
    )
    return "\n".join(lines)


def _format_json(findings: List[Finding]) -> str:
    counts: dict = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return json.dumps(
        {
            "schema": JSON_SCHEMA,
            "rules": ALL_RULES,
            "counts": counts,
            "findings": [f.to_dict() for f in findings],
        },
        indent=2,
        sort_keys=True,
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant linter for this repository: enforces "
            "the clock/atomic-write/import-guard/lock/fingerprint/"
            "registry/telemetry contracts (see CONTRIBUTING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--root", help="repository root (default: auto-detected)"
    )
    parser.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        help=(
            "baseline file of grandfathered findings (default: "
            f"{DEFAULT_BASELINE_NAME} at the repo root, when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its invariant and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in sorted(ALL_RULES):
            print(f"{rule}: {ALL_RULES[rule]}")
        return 0
    rules = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    try:
        root = find_repo_root(Path(args.root) if args.root else None)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
        elif (root / DEFAULT_BASELINE_NAME).exists():
            baseline_path = root / DEFAULT_BASELINE_NAME
    try:
        findings = lint(
            root=root,
            paths=args.paths or None,
            rules=rules,
            baseline=None if args.write_baseline else baseline_path,
        )
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        target = baseline_path or root / DEFAULT_BASELINE_NAME
        count = write_baseline(target, findings)
        print(f"repro-lint: wrote {count} entr(y/ies) to {target}")
        return 0
    output = (
        _format_json(findings)
        if args.format == "json"
        else _format_table(findings)
    )
    print(output)
    if any(f.rule == "parse-error" for f in findings):
        return 2
    return 1 if findings else 0
