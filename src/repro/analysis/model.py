"""Data model for repro-lint: findings, pragmas, parsed files.

The linter (see :mod:`repro.analysis.engine`) parses every Python file
under ``src/repro`` once into a :class:`ParsedFile` — source text, AST,
and the ``# repro-lint: allow[rule]`` suppression pragmas — and hands
the whole :class:`Project` to each checker.  Checkers yield
:class:`Finding` objects; the engine drops the ones a pragma or the
committed baseline covers.

Pragma syntax
-------------
::

    something()  # repro-lint: allow[wall-clock]
    # repro-lint: allow[lock-blocking, atomic-write] -- justification
    next_line_is_covered()

A pragma sharing a line with code suppresses findings on *that* line; a
pragma on a line of its own suppresses findings on the *next* line.
Everything after ``--`` is a free-form justification (required by
convention, not by the parser).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["Finding", "ParsedFile", "Project", "PRAGMA_RE"]

PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*allow\[([^\]]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: repo-relative posix path
    line: int  #: 1-based line number
    rule: str  #: rule id, e.g. ``wall-clock``
    message: str  #: what is wrong, specifically
    hint: str = ""  #: how to fix it (or how to suppress legitimately)
    #: Stripped source text of the flagged line — the stable part of the
    #: baseline key, so findings survive unrelated line moves.
    text: str = ""

    @property
    def baseline_key(self) -> str:
        return f"{self.path}::{self.rule}::{self.text}"

    def to_dict(self) -> Dict[str, str]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
            "text": self.text,
        }


class ParsedFile:
    """One source file: text, AST, pragmas, lazy parent links."""

    def __init__(self, path: Path, rel: str) -> None:
        self.path = path
        self.rel = rel
        self.text = path.read_text()
        self.lines = self.text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(self.text, filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - repo always parses
            self.syntax_error = exc
        self._pragmas = self._collect_pragmas()
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    # -- pragmas -------------------------------------------------------
    def _collect_pragmas(self) -> Dict[int, Set[str]]:
        pragmas: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = PRAGMA_RE.search(line)
            if not match:
                continue
            rules = {
                part.split("--")[0].strip()
                for part in match.group(1).split(",")
            }
            rules.discard("")
            code_before = line[: match.start()].strip()
            target = lineno if code_before else lineno + 1
            pragmas.setdefault(target, set()).update(rules)
        return pragmas

    def allows(self, line: int, rule: str) -> bool:
        """True when a pragma suppresses ``rule`` findings on ``line``."""
        rules = self._pragmas.get(line)
        return bool(rules) and (rule in rules or "all" in rules)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # -- AST helpers ---------------------------------------------------
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map for the file's AST (built lazily once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(node):
                        parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        parents = self.parents()
        while node in parents:
            node = parents[node]
            yield node

    def functions(self) -> List[ast.FunctionDef]:
        """Every function/method definition in the file."""
        if self.tree is None:
            return []
        return [
            node
            for node in ast.walk(self.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]


@dataclass
class Project:
    """Every parsed file of the linted tree, with module-name lookup."""

    root: Path  #: repository root (the directory holding ``src/``)
    files: List[ParsedFile] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_module: Dict[str, ParsedFile] = {
            self.module_of(f.rel): f for f in self.files
        }

    @staticmethod
    def module_of(rel: str) -> str:
        """``src/repro/api/config.py`` → ``repro.api.config``."""
        parts = Path(rel).with_suffix("").parts
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def module(self, name: str) -> Optional[ParsedFile]:
        return self._by_module.get(name)

    def modules(self) -> Iterable[Tuple[str, ParsedFile]]:
        return self._by_module.items()
