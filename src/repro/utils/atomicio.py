"""Atomic (tmp + ``os.replace``) file writes for durable directories.

Every durable artifact in this repo — job records, progress mirrors,
result/checkpoint archives, telemetry dumps — must be written so that a
concurrent reader in another process never sees a torn file and a crash
mid-write leaves the previous version intact.  The recipe is always the
same: write the full payload to a sibling ``*.tmp`` file, then
``os.replace`` it over the destination (atomic on POSIX within one
filesystem).

This module is the single blessed implementation of that recipe; the
``atomic-write`` rule of :mod:`repro.analysis` flags durable-directory
writes that bypass it.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union

__all__ = ["atomic_output", "atomic_write_text", "atomic_write_json"]


@contextmanager
def atomic_output(path: Union[str, Path]) -> Iterator[Path]:
    """Yield a temporary sibling of ``path``; publish it atomically.

    The caller writes the complete payload to the yielded tmp path; on
    clean exit the tmp file is ``os.replace``-d over ``path``, on error
    it is removed and ``path`` is left untouched::

        with atomic_output(directory / "result.npz") as tmp:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **payload)
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` via tmp + rename."""
    with atomic_output(path) as tmp:
        tmp.write_text(text)


def atomic_write_json(
    path: Union[str, Path],
    payload: Any,
    *,
    indent: Optional[int] = None,
    sort_keys: bool = False,
) -> None:
    """Serialize ``payload`` as JSON (newline-terminated) atomically."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    )
