"""Shared low-level utilities: rectangle geometry, FFT helpers, validation.

These are the primitives everything else is built on.  ``Rect`` in
particular is the lingua franca of the decomposition code: tiles, halos,
probe windows and overlap regions are all axis-aligned rectangles in global
image coordinates.
"""

from repro.utils.geometry import Rect, intervals_overlap, union_rects
from repro.utils.fftutils import fft2c, ifft2c, fftfreq_grid
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_shape2d,
)

__all__ = [
    "Rect",
    "intervals_overlap",
    "union_rects",
    "fft2c",
    "ifft2c",
    "fftfreq_grid",
    "check_positive_int",
    "check_probability",
    "check_shape2d",
]
