"""Axis-aligned rectangle geometry in global image coordinates.

Every spatial object in the decomposition — an image tile, its halo-extended
region, a probe window, an overlap region between two extended tiles — is an
axis-aligned rectangle.  The directional forward/backward gradient passes of
the paper reduce to interval arithmetic on these rectangles, so this module
is the geometric foundation of the whole library.

Coordinate convention: ``(row, col)`` with half-open extents
``[r0, r1) x [c0, c1)``, matching NumPy slicing.  All coordinates are
integers (pixels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

__all__ = ["Rect", "intervals_overlap", "union_rects"]


def intervals_overlap(a0: int, a1: int, b0: int, b1: int) -> bool:
    """Return True when half-open intervals ``[a0, a1)`` and ``[b0, b1)``
    intersect in a region of positive length."""
    return max(a0, b0) < min(a1, b1)


@dataclass(frozen=True, order=True)
class Rect:
    """A half-open axis-aligned rectangle ``[r0, r1) x [c0, c1)``.

    Immutable and hashable so rectangles can key dictionaries (e.g. mapping
    an overlap region to a communication edge).
    """

    r0: int
    r1: int
    c0: int
    c1: int

    def __post_init__(self) -> None:
        if self.r1 < self.r0 or self.c1 < self.c0:
            raise ValueError(
                f"degenerate Rect: rows [{self.r0},{self.r1}) "
                f"cols [{self.c0},{self.c1})"
            )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of rows covered."""
        return self.r1 - self.r0

    @property
    def width(self) -> int:
        """Number of columns covered."""
        return self.c1 - self.c0

    @property
    def shape(self) -> Tuple[int, int]:
        """``(height, width)`` — convenient for allocating arrays."""
        return (self.height, self.width)

    @property
    def area(self) -> int:
        """Pixel count."""
        return self.height * self.width

    @property
    def is_empty(self) -> bool:
        """True when the rectangle covers zero pixels."""
        return self.height == 0 or self.width == 0

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def intersect(self, other: "Rect") -> Optional["Rect"]:
        """Intersection with ``other``; ``None`` when they do not overlap
        in a region of positive area."""
        r0 = max(self.r0, other.r0)
        r1 = min(self.r1, other.r1)
        c0 = max(self.c0, other.c0)
        c1 = min(self.c1, other.c1)
        if r0 >= r1 or c0 >= c1:
            return None
        return Rect(r0, r1, c0, c1)

    def union_bbox(self, other: "Rect") -> "Rect":
        """Smallest rectangle containing both ``self`` and ``other``."""
        return Rect(
            min(self.r0, other.r0),
            max(self.r1, other.r1),
            min(self.c0, other.c0),
            max(self.c1, other.c1),
        )

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies fully inside ``self``."""
        return (
            self.r0 <= other.r0
            and other.r1 <= self.r1
            and self.c0 <= other.c0
            and other.c1 <= self.c1
        )

    def contains_point(self, r: int, c: int) -> bool:
        """True when pixel ``(r, c)`` lies inside ``self``."""
        return self.r0 <= r < self.r1 and self.c0 <= c < self.c1

    def overlaps(self, other: "Rect") -> bool:
        """True when the rectangles share a region of positive area."""
        return intervals_overlap(
            self.r0, self.r1, other.r0, other.r1
        ) and intervals_overlap(self.c0, self.c1, other.c0, other.c1)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def expand(self, margin_rows: int, margin_cols: Optional[int] = None) -> "Rect":
        """Grow by ``margin_rows`` rows on top/bottom and ``margin_cols``
        columns left/right (defaults to ``margin_rows``)."""
        if margin_cols is None:
            margin_cols = margin_rows
        return Rect(
            self.r0 - margin_rows,
            self.r1 + margin_rows,
            self.c0 - margin_cols,
            self.c1 + margin_cols,
        )

    def clip(self, bounds: "Rect") -> "Rect":
        """Clamp to ``bounds``.  Unlike :meth:`intersect` this never returns
        ``None``; a rectangle fully outside ``bounds`` collapses to an empty
        rectangle on the boundary."""
        r0 = min(max(self.r0, bounds.r0), bounds.r1)
        r1 = min(max(self.r1, bounds.r0), bounds.r1)
        c0 = min(max(self.c0, bounds.c0), bounds.c1)
        c1 = min(max(self.c1, bounds.c0), bounds.c1)
        return Rect(r0, max(r0, r1), c0, max(c0, c1))

    def shift(self, dr: int, dc: int) -> "Rect":
        """Translate by ``(dr, dc)``."""
        return Rect(self.r0 + dr, self.r1 + dr, self.c0 + dc, self.c1 + dc)

    # ------------------------------------------------------------------
    # Array access
    # ------------------------------------------------------------------
    def slices_in(self, frame: "Rect") -> Tuple[slice, slice]:
        """NumPy slices addressing this rectangle inside an array whose
        element ``[0, 0]`` sits at global position ``(frame.r0, frame.c0)``.

        Raises ``ValueError`` if ``self`` is not contained in ``frame`` —
        catching off-by-one halo bugs early is worth the check.
        """
        if not frame.contains(self):
            raise ValueError(f"{self} not contained in frame {frame}")
        return (
            slice(self.r0 - frame.r0, self.r1 - frame.r0),
            slice(self.c0 - frame.c0, self.c1 - frame.c0),
        )

    def global_slices(self) -> Tuple[slice, slice]:
        """Slices addressing this rectangle in a full-image array."""
        return (slice(self.r0, self.r1), slice(self.c0, self.c1))

    def iter_points(self) -> Iterator[Tuple[int, int]]:
        """Iterate over every pixel coordinate (row-major)."""
        for r in range(self.r0, self.r1):
            for c in range(self.c0, self.c1):
                yield (r, c)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Rect(rows=[{self.r0},{self.r1}), cols=[{self.c0},{self.c1}))"


def union_rects(rects: Iterable[Rect]) -> Rect:
    """Bounding box of a non-empty collection of rectangles."""
    it = iter(rects)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError("union_rects() requires at least one rectangle")
    for r in it:
        acc = acc.union_bbox(r)
    return acc
