"""Centered, unitary FFT helpers.

All transforms in the library use the ``norm="ortho"`` convention so the
adjoint of the forward FFT is exactly the inverse FFT — the property the
analytic multislice gradient relies on.  The ``fft2c``/``ifft2c`` pair keeps
the zero-frequency component at the array center (detector convention).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["fft2c", "ifft2c", "fftfreq_grid"]


def fft2c(field: np.ndarray) -> np.ndarray:
    """Centered unitary 2-D FFT over the last two axes.

    Input and output have the zero frequency / real-space origin at the
    array center, matching how a detector image is displayed.
    """
    return np.fft.fftshift(
        np.fft.fft2(np.fft.ifftshift(field, axes=(-2, -1)), norm="ortho"),
        axes=(-2, -1),
    )


def ifft2c(field: np.ndarray) -> np.ndarray:
    """Centered unitary 2-D inverse FFT over the last two axes (adjoint of
    :func:`fft2c`)."""
    return np.fft.fftshift(
        np.fft.ifft2(np.fft.ifftshift(field, axes=(-2, -1)), norm="ortho"),
        axes=(-2, -1),
    )


def fftfreq_grid(
    shape: Tuple[int, int], pixel_size: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Spatial-frequency coordinate grids for a centered FFT.

    Parameters
    ----------
    shape:
        ``(rows, cols)`` of the field.
    pixel_size:
        Real-space sampling in the same length unit used elsewhere
        (this library uses picometers throughout).

    Returns
    -------
    (ky, kx):
        2-D arrays (broadcast from 1-D) of spatial frequency in cycles per
        length unit, fftshifted so frequency zero sits at the array center.
    """
    rows, cols = shape
    ky = np.fft.fftshift(np.fft.fftfreq(rows, d=pixel_size))
    kx = np.fft.fftshift(np.fft.fftfreq(cols, d=pixel_size))
    return ky[:, None], kx[None, :]
