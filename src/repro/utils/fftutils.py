"""Centered, unitary FFT helpers — a thin dispatch onto the active
compute backend.

All transforms in the library use the ``norm="ortho"`` convention so the
adjoint of the forward FFT is exactly the inverse FFT — the property the
analytic multislice gradient relies on.  The ``fft2c``/``ifft2c`` pair
keeps the zero-frequency component at the array center (detector
convention).

Execution (which FFT library, how many workers, what precision the
transform preserves) belongs to :mod:`repro.backend`: pass ``backend=``
explicitly, or leave it ``None`` for ambient resolution
(``REPRO_BACKEND`` environment variable, else the ``numpy`` default —
which is bit-identical to the historical hard-wired ``np.fft`` path).
Both helpers preserve single precision: ``complex64`` in, ``complex64``
out (``np.fft`` alone silently upcasts to ``complex128``).
"""

from __future__ import annotations

import time
from typing import Optional, Tuple, Union

import numpy as np

from repro.backend.base import ArrayBackend, resolve_backend
from repro.obs import telemetry as _obs

__all__ = ["fft2c", "ifft2c", "fftfreq_grid"]

_BackendSpec = Union[str, ArrayBackend, None]


def _count_fft(tel, kind: str, backend_name: str, shape, dt: float) -> None:
    """Accumulate one transform into the active recorder: total count
    and seconds, the per-backend split, and a batch-shape histogram.
    All leading axes count as batch (a mixed-state ``(M, B, w, w)``
    sweep is ``M*B`` planes per call)."""
    batch = 1
    for n in shape[:-2]:
        batch *= int(n)
    tel.add(
        {
            "fft.calls": 1,
            "fft.seconds": dt,
            f"fft.{kind}.calls": 1,
            f"fft.{backend_name}.calls": 1,
            f"fft.{backend_name}.seconds": dt,
            f"fft.batch[{batch}x{shape[-2]}x{shape[-1]}].calls": 1,
        }
    )


def fft2c(field: np.ndarray, backend: _BackendSpec = None) -> np.ndarray:
    """Centered unitary 2-D FFT over the last two axes.

    Input and output have the zero frequency / real-space origin at the
    array center, matching how a detector image is displayed.  Executed
    by ``backend`` (ambient default when ``None``); output precision
    matches input precision.
    """
    b = resolve_backend(backend)
    tel = _obs.current()
    if not tel.enabled:
        # norm is passed explicitly: unitarity is *this* module's
        # invariant, never delegated to a backend's default.
        return np.fft.fftshift(
            b.fft2(np.fft.ifftshift(field, axes=(-2, -1)), norm="ortho"),
            axes=(-2, -1),
        )
    t0 = time.perf_counter()
    out = np.fft.fftshift(
        b.fft2(np.fft.ifftshift(field, axes=(-2, -1)), norm="ortho"),
        axes=(-2, -1),
    )
    _count_fft(tel, "fft2", b.name, field.shape, time.perf_counter() - t0)
    return out


def ifft2c(field: np.ndarray, backend: _BackendSpec = None) -> np.ndarray:
    """Centered unitary 2-D inverse FFT over the last two axes (adjoint
    of :func:`fft2c`)."""
    b = resolve_backend(backend)
    tel = _obs.current()
    if not tel.enabled:
        return np.fft.fftshift(
            b.ifft2(np.fft.ifftshift(field, axes=(-2, -1)), norm="ortho"),
            axes=(-2, -1),
        )
    t0 = time.perf_counter()
    out = np.fft.fftshift(
        b.ifft2(np.fft.ifftshift(field, axes=(-2, -1)), norm="ortho"),
        axes=(-2, -1),
    )
    _count_fft(tel, "ifft2", b.name, field.shape, time.perf_counter() - t0)
    return out


def fftfreq_grid(
    shape: Tuple[int, int], pixel_size: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Spatial-frequency coordinate grids for a centered FFT.

    Parameters
    ----------
    shape:
        ``(rows, cols)`` of the field.
    pixel_size:
        Real-space sampling in the same length unit used elsewhere
        (this library uses picometers throughout).

    Returns
    -------
    (ky, kx):
        2-D arrays (broadcast from 1-D) of spatial frequency in cycles per
        length unit, fftshifted so frequency zero sits at the array center.
    """
    rows, cols = shape
    ky = np.fft.fftshift(np.fft.fftfreq(rows, d=pixel_size))
    kx = np.fft.fftshift(np.fft.fftfreq(cols, d=pixel_size))
    return ky[:, None], kx[None, :]
