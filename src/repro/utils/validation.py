"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Tuple

__all__ = ["check_positive_int", "check_probability", "check_shape2d"]


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it as float."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_shape2d(shape: Tuple[int, int], name: str) -> Tuple[int, int]:
    """Validate a 2-tuple of positive ints and return it."""
    if len(shape) != 2:
        raise ValueError(f"{name} must have two entries, got {shape!r}")
    rows, cols = shape
    check_positive_int(int(rows), f"{name}[0]")
    check_positive_int(int(cols), f"{name}[1]")
    return (int(rows), int(cols))
