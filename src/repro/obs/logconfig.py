"""Logging setup for the ``repro.*`` logger hierarchy.

The library side follows the standard library-logging contract: every
module logs to ``logging.getLogger(__name__)`` (all under the
``repro`` namespace) and the package root installs a ``NullHandler``,
so embedding applications hear nothing unless they opt in.

The CLI side opts in here: :func:`configure_logging` attaches one
stream handler to the ``repro`` logger at a level resolved with the
repo's usual precedence — an explicit ``--log-level`` beats ``-v``
verbosity flags beats the ``REPRO_LOG`` environment variable beats the
``WARNING`` default.  Configuration is idempotent (re-invocation
replaces the handler rather than stacking duplicates) and deliberately
touches only the ``repro`` logger, never the root logger.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

__all__ = ["ENV_LOG", "resolve_log_level", "configure_logging"]

#: Ambient log-level knob (a level name like ``DEBUG`` or a number).
ENV_LOG = "REPRO_LOG"

_DEFAULT_LEVEL = logging.WARNING

#: Marker attribute identifying the handler this module installed.
_HANDLER_FLAG = "_repro_cli_handler"


def _parse_level(value: str) -> int:
    text = str(value).strip()
    if text.isdigit():
        return int(text)
    level = logging.getLevelName(text.upper())
    if not isinstance(level, int):
        raise ValueError(
            f"unknown log level {value!r}; use DEBUG, INFO, WARNING, "
            f"ERROR, CRITICAL, or a number"
        )
    return level


def resolve_log_level(
    explicit: Optional[str] = None, verbosity: int = 0
) -> int:
    """The effective level: explicit beats ``-v`` beats ``REPRO_LOG``
    beats WARNING.

    An unparsable ``REPRO_LOG`` falls back to the default instead of
    raising — an environment variable must never be able to crash a
    run that did not ask for logging at all.
    """
    if explicit is not None:
        return _parse_level(explicit)
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    ambient = os.environ.get(ENV_LOG)
    if ambient:
        try:
            return _parse_level(ambient)
        except ValueError:
            logging.getLogger(__name__).warning(
                "ignoring unparsable %s=%r", ENV_LOG, ambient
            )
    return _DEFAULT_LEVEL


def configure_logging(
    explicit: Optional[str] = None,
    verbosity: int = 0,
    stream=None,
) -> int:
    """Attach a stream handler to the ``repro`` logger and return the
    resolved level (see module docstring for the precedence)."""
    level = resolve_log_level(explicit, verbosity)
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    return level
