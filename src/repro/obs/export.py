"""Telemetry read-outs: Chrome trace-event JSON and the stats table.

Two consumers, two formats:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the *timeline*
  view.  Emits the Chrome trace-event JSON object format (complete
  ``X`` duration events plus ``M`` process-name metadata), loadable
  directly in ``chrome://tracing`` or https://ui.perfetto.dev.  Each
  logical rank gets its own ``pid`` row (``pid 0`` is the run-level
  timeline), so a process-executor run renders as the per-rank swimlane
  picture the paper draws for Summit.
* :func:`format_stats_table` / :func:`load_stats` — the *aggregate*
  view.  A summary dict (see :meth:`Telemetry.summary`) renders as a
  fixed-width phase table; ``load_stats`` resolves the ``repro stats``
  CLI argument — a result archive (``.npz`` with an embedded
  ``telemetry_json``) or a service job directory (``telemetry.json``).
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.telemetry import BREAKDOWN_KEYS, Telemetry

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "format_stats_table",
    "load_stats",
]

logger = logging.getLogger(__name__)

#: Trace rows: the run-level timeline plus one row per logical rank.
_RUN_PID = 0


def _pid_of(rank: Optional[int]) -> int:
    return _RUN_PID if rank is None else int(rank) + 1


def chrome_trace(telemetry: Telemetry) -> Dict[str, Any]:
    """The recorder's events as a Chrome trace-event JSON object.

    Timestamps are microseconds relative to the recorder's epoch;
    ingested worker events share the machine-wide monotonic clock, so
    no rebasing is needed (and per-rank order is preserved).
    """
    epoch = telemetry.epoch
    events: List[Dict[str, Any]] = []
    pids_seen = set()
    for name, rank, t0, t1, args in telemetry.events_snapshot():
        pid = _pid_of(rank)
        pids_seen.add(pid)
        event = {
            "name": name,
            "cat": name.partition(".")[0],
            "ph": "X",
            "ts": round(max(0.0, (t0 - epoch)) * 1e6, 3),
            "dur": round(max(0.0, (t1 - t0)) * 1e6, 3),
            "pid": pid,
            "tid": 0,
        }
        if args:
            event["args"] = dict(args)
        events.append(event)
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {
                "name": "run" if pid == _RUN_PID else f"rank {pid - 1}"
            },
        }
        for pid in sorted(pids_seen)
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "schema": "repro-trace/1"},
    }


def write_chrome_trace(
    path: Union[str, Path], telemetry: Telemetry
) -> Path:
    """Write the Chrome trace-event JSON for ``telemetry`` to ``path``."""
    path = Path(path)
    payload = chrome_trace(telemetry)
    path.write_text(json.dumps(payload) + "\n")
    logger.info(
        "wrote Chrome trace with %d events to %s (open in chrome://tracing "
        "or https://ui.perfetto.dev)",
        len(payload["traceEvents"]),
        path,
    )
    return path


# ----------------------------------------------------------------------
# Aggregate view
# ----------------------------------------------------------------------
def format_stats_table(summary: Dict[str, Any]) -> str:
    """Render a telemetry summary as a fixed-width text table.

    Sections: the phase breakdown (the paper's timing vocabulary),
    per-span totals, and the non-timing counters.
    """
    lines: List[str] = []
    breakdown = summary.get("breakdown", {})
    total = sum(breakdown.values()) or 1.0
    lines.append(f"{'PHASE':<12} {'SECONDS':>10} {'SHARE':>7}")
    for key in BREAKDOWN_KEYS:
        seconds = breakdown.get(key, 0.0)
        lines.append(
            f"{key:<12} {seconds:>10.4f} {100.0 * seconds / total:>6.1f}%"
        )
    phases = summary.get("phases", {})
    if phases:
        lines.append("")
        lines.append(f"{'SPAN':<24} {'CALLS':>8} {'SECONDS':>10}")
        for name in sorted(phases):
            slot = phases[name]
            lines.append(
                f"{name:<24} {int(slot['calls']):>8} {slot['seconds']:>10.4f}"
            )
    counters = {
        name: value
        for name, value in summary.get("counters", {}).items()
        if not name.endswith(".seconds")
    }
    if counters:
        lines.append("")
        lines.append(f"{'COUNTER':<32} {'VALUE':>12}")
        for name in sorted(counters):
            value = float(counters[name])
            shown = f"{int(value)}" if value.is_integer() else f"{value:.4f}"
            lines.append(f"{name:<32} {shown:>12}")
    dropped = summary.get("events_dropped", 0)
    if dropped:
        lines.append("")
        lines.append(f"(trace truncated: {dropped} events dropped)")
    return "\n".join(lines)


def load_stats(path: Union[str, Path]) -> Dict[str, Any]:
    """Resolve the ``repro stats`` argument to a telemetry summary.

    ``path`` may be a result archive (``.npz`` written by
    :func:`repro.io.save_result` with telemetry attached) or a service
    job directory (containing ``telemetry.json``).  Raises
    ``ValueError`` when the target holds no telemetry — a run recorded
    without tracing enabled has nothing to show, and saying so beats
    printing an all-zero table.
    """
    path = Path(path)
    if path.is_dir():
        telemetry_path = path / "telemetry.json"
        if not telemetry_path.is_file():
            raise ValueError(
                f"{path} has no telemetry.json — the job has not settled "
                f"yet, or predates the telemetry subsystem"
            )
        payload = json.loads(telemetry_path.read_text())
        if payload.get("schema") == "repro-job-telemetry/1":
            summary = payload.get("summary")
            if summary is None:
                raise ValueError(
                    f"job {payload.get('job_id')} ran without tracing — "
                    f"submit with config telemetry=true (or REPRO_TRACE=1 "
                    f"in the server's environment) to record spans"
                )
            # Surface the job-level wait-vs-run split alongside the
            # leg's own counters (names deliberately not *.seconds so
            # the stats table shows them).
            queue = payload.get("queue") or {}
            counters = dict(summary.get("counters", {}))
            if queue.get("wait_s") is not None:
                counters.setdefault("job.queue_wait_s", queue["wait_s"])
            if queue.get("run_s") is not None:
                counters.setdefault("job.run_s", queue["run_s"])
            return dict(summary, counters=counters)
        return payload
    if not path.is_file():
        raise ValueError(f"{path} is neither an archive nor a job directory")
    from repro.io.storage import load_result

    archive = load_result(path)
    if archive.telemetry is None:
        raise ValueError(
            f"{path} holds no telemetry summary — re-run with --trace, "
            f"config telemetry=true, or REPRO_TRACE=1 to record one"
        )
    return archive.telemetry
