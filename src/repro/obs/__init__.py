"""``repro.obs`` — zero-dependency observability: tracing spans,
counters, per-rank timelines, and structured-logging setup.

See :mod:`repro.obs.telemetry` for the recording model (per-run
:class:`Telemetry`, ambient :func:`current`/:func:`activate`
resolution, the ``REPRO_TRACE`` enablement rule) and
:mod:`repro.obs.export` for the Chrome-trace and stats-table
read-outs.  :mod:`repro.obs.logconfig` holds the CLI-side logging
configuration for the ``repro.*`` logger hierarchy.
"""

from repro.obs.export import (
    chrome_trace,
    format_stats_table,
    load_stats,
    write_chrome_trace,
)
from repro.obs.logconfig import ENV_LOG, configure_logging, resolve_log_level
from repro.obs.telemetry import (
    BREAKDOWN_KEYS,
    ENV_TRACE,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    activate,
    current,
    default_telemetry_enabled,
    resolve_telemetry,
)

__all__ = [
    "BREAKDOWN_KEYS",
    "ENV_LOG",
    "ENV_TRACE",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "activate",
    "chrome_trace",
    "configure_logging",
    "current",
    "default_telemetry_enabled",
    "format_stats_table",
    "load_stats",
    "resolve_log_level",
    "resolve_telemetry",
    "write_chrome_trace",
]
