"""Zero-dependency telemetry core: spans, counters, one recorder per run.

The paper's headline results are *phase-timing* claims — gradient
compute vs. halo exchange vs. synchronization (Fig. 8's Summit
breakdown) — so the reproduction needs the same decomposition of its
own wall time before any runtime optimisation can be argued from data
(ROADMAP item 4).  This module provides the recording half:

* :class:`Telemetry` — a per-run recorder of hierarchical **spans**
  (named intervals, optionally attributed to a logical rank) and
  monotonic **counters** (``fft.calls``, ``store.cache.hits``, ...).
  Spans aggregate on close into per-``(name, rank)`` call/second
  totals, and the raw events are kept (bounded) for Chrome trace
  export.
* :class:`NullTelemetry` — the shared disabled recorder.  Every
  instrumented hot path guards on ``current().enabled`` first, so a
  disabled run pays one thread-local read and one attribute test per
  site — no allocation, no lock, no string formatting.  Tier-1 pins
  both that budget and the bit-identity of disabled runs.
* :func:`current` / :func:`activate` — thread-local recorder
  resolution.  A run activates its recorder around the solver call;
  engine, stores and FFT helpers pick it up ambiently, which keeps
  their signatures telemetry-free.  Thread-locality (not a process
  global) is what lets concurrent service workers trace different
  jobs independently.
* :func:`resolve_telemetry` — the enablement rule, following the
  repo-wide precedence: explicit config value beats the
  ``REPRO_TRACE`` environment variable beats the built-in default
  (off).

Worker processes each run their own recorder and ship
:meth:`Telemetry.drain` payloads back in the per-step report dict (the
ProcessComm event-accounting seam); the parent merges them with
:meth:`Telemetry.ingest`.  ``time.perf_counter`` is CLOCK_MONOTONIC
within one machine, so merged timelines stay ordered per rank — the
invariant ``tests/obs`` asserts.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ENV_TRACE",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current",
    "activate",
    "resolve_telemetry",
    "default_telemetry_enabled",
    "BREAKDOWN_KEYS",
]

#: Ambient telemetry switch (any value not in ``_FALSY`` enables it).
ENV_TRACE = "REPRO_TRACE"

_FALSY = frozenset({"", "0", "false", "no", "off"})

#: Keys every phase-breakdown summary carries (seconds each) — the
#: vocabulary of the paper's timing decomposition plus this repo's
#: service/data layers.
BREAKDOWN_KEYS = (
    "fft",
    "gradient",
    "halo",
    "collective",
    "store",
    "queue",
    "checkpoint",
)

#: Span-name prefixes/names feeding each breakdown bucket.
_PHASE_BUCKETS = {
    "engine.compute": "gradient",
    "engine.local_solve": "gradient",
    "engine.exchange": "halo",
    "engine.paste": "halo",
    "engine.allreduce": "collective",
    "engine.barrier": "collective",
    "engine.probe_sync": "collective",
    "checkpoint.save": "checkpoint",
}

#: Counter names feeding each breakdown bucket.
_COUNTER_BUCKETS = {
    "fft.seconds": "fft",
    "store.read.seconds": "store",
    "store.chunk_load.seconds": "store",
    "store.prefetch.wait_seconds": "store",
    "queue.wait.seconds": "queue",
}


def default_telemetry_enabled() -> bool:
    """Whether ``REPRO_TRACE`` turns telemetry on ambiently."""
    return os.environ.get(ENV_TRACE, "").strip().lower() not in _FALSY


def resolve_telemetry(spec: Optional[bool]) -> bool:
    """Explicit config value beats ``REPRO_TRACE`` beats off — the same
    precedence backends, dtypes and executors already follow."""
    if spec is not None:
        return bool(spec)
    return default_telemetry_enabled()


# ----------------------------------------------------------------------
# Disabled path
# ----------------------------------------------------------------------
class _NullSpan:
    """Allocation-free context manager for disabled spans."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled recorder: every method is a no-op.

    Instrumentation sites guard on :attr:`enabled` before doing any
    argument work, so this class exists mostly so un-guarded calls
    (cold paths) stay safe without ``None`` checks.
    """

    enabled = False

    def span(self, name: str, rank: Optional[int] = None, **args: Any):
        return _NULL_SPAN

    def count(self, name: str, value: float = 1.0) -> None:
        return

    def add(self, counters: Dict[str, float]) -> None:
        return

    def phase_label(self) -> Optional[str]:
        return None

    def summary(self) -> Optional[Dict[str, Any]]:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTelemetry()"


NULL_TELEMETRY = NullTelemetry()

_tls = threading.local()


def current() -> "Telemetry":
    """The recorder active on this thread (the shared null recorder
    when none has been activated)."""
    return getattr(_tls, "telemetry", NULL_TELEMETRY)


class activate:
    """Context manager installing ``telemetry`` as this thread's
    ambient recorder for the duration of a ``with`` block.

    Nests: the previous recorder is restored on exit, so a CLI-owned
    recorder wrapping :func:`repro.reconstruct` and a config-enabled
    recorder inside it never fight.
    """

    def __init__(self, telemetry: "Telemetry") -> None:
        self.telemetry = telemetry
        self._previous: Any = None

    def __enter__(self) -> "Telemetry":
        self._previous = getattr(_tls, "telemetry", NULL_TELEMETRY)
        _tls.telemetry = self.telemetry
        return self.telemetry

    def __exit__(self, *exc_info) -> bool:
        _tls.telemetry = self._previous
        return False


# ----------------------------------------------------------------------
# Enabled recorder
# ----------------------------------------------------------------------
class _Span:
    """Context manager recording one interval on exit."""

    __slots__ = ("_telemetry", "name", "rank", "args", "_t0")

    def __init__(self, telemetry, name, rank, args):
        self._telemetry = telemetry
        self.name = name
        self.rank = rank
        self.args = args

    def __enter__(self) -> "_Span":
        self._telemetry._last_phase = self.name
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._telemetry._record(
            self.name, self.rank, self._t0, time.perf_counter(), self.args
        )
        return False


class Telemetry:
    """One run's telemetry recorder (see module docstring).

    Parameters
    ----------
    max_events:
        Bound on retained raw span events (aggregates are unbounded but
        tiny).  Overflowing events are *counted*, not silently lost:
        the summary reports ``events_dropped`` so a truncated trace is
        visible as such.
    """

    enabled = True

    def __init__(self, max_events: int = 200_000) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = int(max_events)
        #: perf_counter at creation — the trace's time origin.
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        #: Raw events: (name, rank, t0, t1, args-or-None).
        self._events: List[Tuple] = []
        self._dropped = 0
        #: (name, rank) -> [calls, seconds]
        self._agg: Dict[Tuple[str, Optional[int]], List[float]] = {}
        self._counters: Dict[str, float] = {}
        self._last_phase: Optional[str] = None

    # -- recording -----------------------------------------------------
    def span(self, name: str, rank: Optional[int] = None, **args: Any):
        """A context manager timing one named interval.

        ``rank`` attributes the interval to a logical rank's timeline
        (``None`` = the run-level timeline); ``args`` become Chrome
        trace-event args.
        """
        return _Span(self, name, rank, args or None)

    def _record(self, name, rank, t0, t1, args) -> None:
        with self._lock:
            if len(self._events) < self.max_events:
                self._events.append((name, rank, t0, t1, args))
            else:
                self._dropped += 1
            slot = self._agg.get((name, rank))
            if slot is None:
                self._agg[(name, rank)] = [1, t1 - t0]
            else:
                slot[0] += 1
                slot[1] += t1 - t0

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the monotonic counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def add(self, counters: Dict[str, float]) -> None:
        """Add several counters under one lock acquisition."""
        with self._lock:
            mine = self._counters
            for name, value in counters.items():
                mine[name] = mine.get(name, 0.0) + value

    def phase_label(self) -> Optional[str]:
        """Name of the most recently opened span — a cheap 'what is
        this run doing right now' label for progress mirrors."""
        return self._last_phase

    # -- cross-process merge -------------------------------------------
    def drain(self) -> Dict[str, Any]:
        """Detach and return everything recorded so far (worker side of
        the report-dict piggyback); the recorder restarts empty."""
        with self._lock:
            payload = {
                "epoch": self.epoch,
                "events": self._events,
                "agg": {
                    f"{name}\x00{'' if rank is None else rank}": list(slot)
                    for (name, rank), slot in self._agg.items()
                },
                "counters": dict(self._counters),
                "dropped": self._dropped,
            }
            self._events = []
            self._agg = {}
            self._counters = {}
            self._dropped = 0
            return payload

    def ingest(self, payload: Dict[str, Any]) -> None:
        """Merge a :meth:`drain` payload from a worker recorder.

        Events keep their original ``perf_counter`` timestamps —
        CLOCK_MONOTONIC is machine-wide, and each worker records its
        spans sequentially, so per-rank order survives the merge.
        """
        if not payload:
            return
        with self._lock:
            room = self.max_events - len(self._events)
            events = payload.get("events", ())
            if room >= len(events):
                self._events.extend(events)
            else:
                self._events.extend(events[:room])
                self._dropped += len(events) - room
            self._dropped += payload.get("dropped", 0)
            for key, (calls, seconds) in payload.get("agg", {}).items():
                name, _, rank_s = key.partition("\x00")
                rank = int(rank_s) if rank_s else None
                slot = self._agg.get((name, rank))
                if slot is None:
                    self._agg[(name, rank)] = [calls, seconds]
                else:
                    slot[0] += calls
                    slot[1] += seconds
            mine = self._counters
            for name, value in payload.get("counters", {}).items():
                mine[name] = mine.get(name, 0.0) + value

    # -- read-out ------------------------------------------------------
    def counters_snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def events_snapshot(self) -> List[Tuple]:
        """Raw (name, rank, t0, t1, args) events recorded so far."""
        with self._lock:
            return list(self._events)

    def summary(self) -> Dict[str, Any]:
        """Aggregated stats: per-phase calls/seconds, per-rank seconds,
        counters, and the fft/gradient/halo/collective/store/queue
        breakdown the benchmarks and ``repro stats`` surface."""
        with self._lock:
            agg = {key: list(slot) for key, slot in self._agg.items()}
            counters = dict(self._counters)
            dropped = self._dropped
            n_events = len(self._events)
        phases: Dict[str, Dict[str, float]] = {}
        ranks: Dict[str, Dict[str, float]] = {}
        for (name, rank), (calls, seconds) in sorted(agg.items(),
                                                     key=lambda kv: kv[0][0]):
            slot = phases.setdefault(name, {"calls": 0, "seconds": 0.0})
            slot["calls"] += int(calls)
            slot["seconds"] += seconds
            if rank is not None:
                by_phase = ranks.setdefault(str(rank), {})
                by_phase[name] = by_phase.get(name, 0.0) + seconds
        breakdown = {key: 0.0 for key in BREAKDOWN_KEYS}
        for name, slot in phases.items():
            bucket = _PHASE_BUCKETS.get(name)
            if bucket is not None:
                breakdown[bucket] += slot["seconds"]
        for name, bucket in _COUNTER_BUCKETS.items():
            if name in counters:
                breakdown[bucket] += counters[name]
        return {
            "schema": "repro-telemetry/1",
            "phases": phases,
            "ranks": ranks,
            "counters": counters,
            "breakdown": breakdown,
            "events_recorded": n_events,
            "events_dropped": dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"Telemetry(events={len(self._events)}, "
                f"counters={len(self._counters)})"
            )
