"""Reference and baseline reconstructors.

* :mod:`repro.baseline.serial` — single-process maximum-likelihood
  gradient descent on the full volume (the ground-truth semantics the
  decomposition must match).
* :mod:`repro.baseline.halo_exchange` — the state-of-the-art Halo Voxel
  Exchange algorithm the paper compares against (Sec. II-C), complete with
  extra neighbour probes, augmented halos, synchronous voxel copy-paste,
  the tile-size scalability constraint, and — inevitably — seam artifacts.
"""

from repro.baseline.serial import SerialReconstructor
from repro.baseline.halo_exchange import HaloExchangeReconstructor

__all__ = ["SerialReconstructor", "HaloExchangeReconstructor"]
