"""Halo Voxel Exchange — the state-of-the-art baseline (paper Sec. II-C).

Each tile is assigned its own probes **plus** every probe within
``extra_rows`` scan rows of its border (the neighbouring circles of
Figs. 2(d)-(e)); its halo is augmented to cover them all.  An iteration is:

1. **Local solve**: each rank independently sweeps *all* its probes with
   SGD updates on its extended tile — embarrassingly parallel, but the
   extra probes are redundant computation, and the reconstructions of
   overlapping regions drift apart between ranks.
2. **Voxel exchange**: each rank's *core* voxels are copy-pasted into every
   neighbour's halo through synchronous point-to-point messages
   (Fig. 2(g)), forcing consistency — and imprinting the seam artifacts of
   Fig. 8, because pasted voxels meet locally-evolved voxels at tile
   borders with no blending.

The algorithm cannot scale past the point where a core tile becomes
smaller than the halo it must fill at its neighbours
(:class:`~repro.core.decomposition.ScalabilityError` — the "NA" entries of
Table II(b)).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.decomposition import (
    Decomposition,
    decompose_halo_exchange,
)
from repro.core.engine import NumericEngine
from repro.core.observers import (
    IterationEmitter,
    Observer,
    warn_legacy_callback,
)
from repro.core.reconstructor import ReconstructionResult
from repro.core.stitching import stitch
from repro.data.batching import resolve_positions
from repro.obs import telemetry as _obs
from repro.parallel.topology import MeshLayout
from repro.physics.dataset import PtychoDataset
from repro.runtime.executor import EnginePlan, resolve_executor
from repro.schedule.ops import Barrier, LocalSolve, Schedule, VoxelPaste

__all__ = ["HaloExchangeReconstructor"]


class HaloExchangeReconstructor:
    """Distributed reconstruction via Halo Voxel Exchange.

    Parameters
    ----------
    n_ranks / mesh:
        Cluster size or explicit mesh.
    iterations:
        Full local-solve + exchange cycles.
    lr:
        SGD step size of the local solves.
    extra_rows:
        Rings of neighbour probe locations each tile additionally receives
        (the paper uses two).
    halo:
        ``"exact"`` (cover all assigned windows) or fixed width in pixels
        (the paper's 890 pm = 89 px setting).
    inner_sweeps:
        Local SGD sweeps between voxel exchanges.  The paper's algorithm
        reconstructs tiles *independently* and only then pastes (Sec.
        II-C), so values > 1 are faithful; the longer tiles evolve
        independently, the stronger the seam artifacts.
    enforce_tile_constraint:
        Raise :class:`ScalabilityError` in the "NA" regime (default True,
        faithful to the algorithm; disable only for diagnostics).
    backend / dtype:
        Compute backend and precision policy for the numeric engine
        (see :mod:`repro.backend`); ``None`` resolves the ambient
        defaults.
    executor / runtime_workers:
        Rank-program placement (see :mod:`repro.runtime`): ``"serial"``
        in-process reference or ``"process"`` worker pool; ``None``
        resolves ``REPRO_EXECUTOR``, else ``serial``.
    data_source / batch_size / prefetch:
        Measurement source and batching (see :mod:`repro.data`).  A
        path streams each rank's (redundant, own + extra) shard lazily
        from an on-disk store instead of pinning it in RAM — numerics
        are unchanged.  ``batch_size`` is accepted for config
        uniformity but is a no-op here: the local solves are sequential
        SGD, whose semantics forbid batching (pinned by the parity
        suite).
    positions:
        Restrict local solves to this scan-position subset (``None`` =
        the full scan).  The streaming driver plans each epoch over a
        coverage snapshot this way; the decomposition and exchange
        pattern stay on the full scan, so a restricted run is exactly
        the full run with the missing probes' sweeps skipped.
    probe_modes:
        Number of incoherent probe modes (mixed-state forward model;
        ``None``/1 is the bit-identical scalar path).  This baseline
        never refines the probe, so modes only enter the forward model:
        measured intensity is matched against the incoherent sum over
        the deterministic mode stack expanded from the dataset probe.
    """

    def __init__(
        self,
        n_ranks: Optional[int] = None,
        mesh: Optional[MeshLayout] = None,
        iterations: int = 10,
        lr: float = 0.5,
        extra_rows: int = 2,
        halo: Union[str, int] = "exact",
        inner_sweeps: int = 1,
        enforce_tile_constraint: bool = True,
        backend: Optional[str] = None,
        dtype: Optional[str] = None,
        executor: Optional[str] = None,
        runtime_workers: Optional[int] = None,
        data_source: Optional[str] = None,
        batch_size: Optional[int] = None,
        prefetch: bool = False,
        positions: Optional[Sequence[int]] = None,
        probe_modes: Optional[int] = None,
    ) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if inner_sweeps <= 0:
            raise ValueError("inner_sweeps must be positive")
        if runtime_workers is not None and runtime_workers <= 0:
            raise ValueError("runtime_workers must be positive")
        if probe_modes is not None and probe_modes <= 0:
            raise ValueError("probe_modes must be positive")
        self.n_ranks = n_ranks
        self.mesh = mesh
        self.iterations = iterations
        self.lr = float(lr)
        self.extra_rows = extra_rows
        self.halo = halo
        self.inner_sweeps = inner_sweeps
        self.enforce_tile_constraint = enforce_tile_constraint
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.backend = backend
        self.dtype = dtype
        self.executor = executor
        self.runtime_workers = runtime_workers
        self.data_source = data_source
        self.batch_size = batch_size
        self.prefetch = bool(prefetch)
        self.positions = positions
        self.probe_modes = probe_modes

    # ------------------------------------------------------------------
    def decompose(self, dataset: PtychoDataset) -> Decomposition:
        """Tile decomposition with extra neighbour probes and augmented
        halos; raises :class:`ScalabilityError` in the NA regime."""
        return decompose_halo_exchange(
            dataset.scan,
            dataset.object_shape,
            mesh=self.mesh,
            n_ranks=self.n_ranks if self.mesh is None else None,
            extra_rows=self.extra_rows,
            halo=self.halo,
            enforce_tile_constraint=self.enforce_tile_constraint,
        )

    def build_iteration_schedule(self, decomp: Decomposition) -> Schedule:
        """One iteration: local solves, barrier, synchronous copy-pastes.

        The paste set: for every ordered pair of 8-connected neighbours
        ``(src, dst)``, ``src``'s core voxels overlapping ``dst``'s
        extended tile are pasted (Fig. 2(g)).  Core tiles partition the
        image, so each halo voxel receives exactly one paste.
        """
        schedule = Schedule(decomp.n_ranks)
        # A positions restriction (streaming coverage snapshot) keeps
        # the decomposition on the full scan — tile shapes and the
        # paste pattern never change — and only narrows each tile's
        # local sweep to the covered probes, in the tile's own order.
        active = resolve_positions(self.positions, decomp.scan.n_positions)
        member = frozenset(active) if active is not None else None
        last: Dict[int, int] = {}
        for sweep in range(self.inner_sweeps):
            for tile in decomp.tiles:
                probes = (
                    tile.all_probes
                    if member is None
                    else tuple(p for p in tile.all_probes if p in member)
                )
                if not probes:
                    continue
                uid = schedule.add(
                    LocalSolve(
                        rank=tile.rank,
                        probe_indices=probes,
                        lr=self.lr,
                    ),
                    deps=[last[tile.rank]] if tile.rank in last else [],
                )
                last[tile.rank] = uid
        # The exchange phase is synchronous: nobody pastes until everyone
        # finished its local solve.
        uid = schedule.add(
            Barrier(n_ranks=decomp.n_ranks), deps=sorted(last.values())
        )
        for r in range(decomp.n_ranks):
            last[r] = uid
        for src_tile in decomp.tiles:
            for dst in decomp.mesh.neighbors8(src_tile.rank):
                dst_tile = decomp.tiles[dst]
                region = src_tile.core.intersect(dst_tile.ext)
                if region is None:
                    continue
                uid = schedule.add(
                    VoxelPaste(
                        src=src_tile.rank, dst=dst, region=region, tag=400
                    ),
                    deps=sorted({last[src_tile.rank], last[dst]}),
                )
                last[src_tile.rank] = uid
                last[dst] = uid
        schedule.validate()
        return schedule

    # ------------------------------------------------------------------
    def reconstruct(
        self,
        dataset: PtychoDataset,
        callback: Optional[Callable[[int, float, NumericEngine], None]] = None,
        initial_volume: Optional[np.ndarray] = None,
        *,
        observers: Sequence[Observer] = (),
    ) -> ReconstructionResult:
        """Run the full reconstruction.

        Parameters
        ----------
        dataset:
            The acquisition.
        observers:
            Per-iteration hooks, each receiving a structured
            :class:`~repro.core.observers.IterationEvent` (see that
            module for the ``callback`` → observer migration).
        callback:
            **Deprecated** pre-observer hook ``callback(iteration, cost,
            engine)``; still honoured, with a :class:`DeprecationWarning`.
        initial_volume:
            Warm-start volume (checkpoint restart); defaults to vacuum.
            Probe refinement is *not* available for this baseline — the
            registry adapter rejects it explicitly.
        """
        executor_spec = self.executor
        if callback is not None:
            warn_legacy_callback(type(self).__name__)
            if executor_spec is None:
                # Legacy hook needs the in-process engine; see
                # reconstructor.py — ambient resolution pins serial.
                executor_spec = "serial"
        decomp = self.decompose(dataset)
        schedule = self.build_iteration_schedule(decomp)
        tel = _obs.current()
        session = resolve_executor(
            executor_spec, workers=self.runtime_workers
        ).launch(
            EnginePlan(
                dataset=dataset,
                decomp=decomp,
                schedule=schedule,
                lr=self.lr,
                initial_volume=initial_volume,
                backend=self.backend,
                dtype=self.dtype,
                data_source=self.data_source,
                batch_size=self.batch_size,
                prefetch=self.prefetch,
                probe_modes=self.probe_modes,
                telemetry=tel.enabled,
            )
        )
        if callback is not None and session.engine is None:
            session.close()
            raise ValueError(
                "the deprecated callback= hook needs in-process engine "
                "access and only works with the serial executor; migrate "
                "to observers="
            )

        def result_snapshot(history: List[float]) -> ReconstructionResult:
            return ReconstructionResult(
                volume=stitch(decomp, session.volumes(), dataset.n_slices),
                history=list(history),
                messages=session.messages,
                message_bytes=session.message_bytes,
                peak_memory_per_rank=session.per_rank_peaks,
                decomposition=decomp,
            )

        history: List[float] = []
        emitter = IterationEmitter("hve", self.iterations, observers)
        try:
            for it in range(self.iterations):
                if tel.enabled:
                    with tel.span("run.iteration", iteration=it):
                        cost = session.step()
                else:
                    cost = session.step()
                history.append(cost)
                if callback is not None:
                    callback(it, cost, session.engine)
                emitter.emit(
                    it,
                    cost,
                    messages=session.messages,
                    message_bytes=session.message_bytes,
                    peak_memory_bytes=float(
                        np.mean(session.per_rank_peaks)
                    ),
                    # Live state at call time; see reconstructor.py.
                    snapshot=lambda: result_snapshot(list(history)),
                )

            return result_snapshot(history)
        finally:
            session.close()

    # ------------------------------------------------------------------
    def redundancy_factor(self, decomp: Decomposition) -> float:
        """Mean per-rank (own + extra) / own probe ratio — the redundant
        computation multiplier the paper blames for the poor scalability
        (1.0 means no redundancy; Gradient Decomposition is always 1.0)."""
        ratios = [
            len(t.all_probes) / max(len(t.probes), 1) for t in decomp.tiles
        ]
        return float(np.mean(ratios))
