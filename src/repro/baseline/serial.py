"""Serial maximum-likelihood reconstruction (Eq. (1)) — the correctness
reference.

Two update schemes:

* ``scheme="batch"``: full-batch gradient descent — sum all individual
  gradients, one update per iteration.  The gradient-decomposition
  reconstructor in synchronous mode must match this bit-for-bit (up to
  floating-point accumulation order) — the strongest test in the suite.
* ``scheme="sgd"``: per-probe updates in raster order (PIE-flavoured),
  matching the local part of Alg. 1.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.backend.base import resolve_backend, resolve_precision
from repro.core.reconstructor import ReconstructionResult
from repro.core.decomposition import decompose_gradient
from repro.data import (
    BatchPlanner,
    open_store,
    resolve_batch_size,
    resolve_positions,
)
from repro.core.observers import (
    IterationEmitter,
    Observer,
    warn_legacy_callback,
)
from repro.physics.dataset import PtychoDataset
from repro.physics.probe import make_mode_stack, orthogonalize_modes

__all__ = ["SerialReconstructor"]


class SerialReconstructor:
    """Single-volume gradient-descent solver.

    Parameters
    ----------
    iterations:
        Full sweeps over all probe locations.
    lr:
        Step size (same meaning as the distributed reconstructors).
    scheme:
        ``"batch"`` or ``"sgd"`` (see module docstring).
    backend / dtype:
        Compute backend and precision policy (see :mod:`repro.backend`);
        ``None`` resolves the ambient defaults.
    data_source / batch_size / prefetch:
        Measurement source and batching (see :mod:`repro.data`).
        ``data_source=None`` reads the in-RAM stack (bit-identical to
        the historical behaviour); a path streams from an on-disk store.
        ``batch_size > 1`` runs the full-batch scheme's gradient sweep
        ``batch_size`` probes per multislice evaluation — bit-identical
        to per-position order.  The ``"sgd"`` scheme is inherently
        sequential (each step changes the volume the next probe reads),
        so it always evaluates per position.
    positions:
        Restrict sweeps to this scan-position subset in index order
        (``None`` = the full scan) — how the streaming driver runs an
        epoch over a coverage snapshot.
    probe_modes:
        Number of incoherent probe modes (mixed-state reconstruction;
        ``None``/1 is the bit-identical scalar path).  ``M > 1``
        carries an ``(M, w, w)`` stack through the sweeps; with
        ``refine_probe=True`` the per-mode gradient step is followed by
        an SVD re-orthogonalization each iteration, mirroring the
        distributed engine's ``OrthogonalizeProbe`` phase.
    """

    def __init__(
        self,
        iterations: int = 10,
        lr: float = 0.5,
        scheme: str = "batch",
        refine_probe: bool = False,
        probe_lr: Optional[float] = None,
        backend: Optional[str] = None,
        dtype: Optional[str] = None,
        data_source: Optional[str] = None,
        batch_size: Optional[int] = None,
        prefetch: bool = False,
        positions: Optional[Sequence[int]] = None,
        probe_modes: Optional[int] = None,
    ) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if scheme not in ("batch", "sgd"):
            raise ValueError(f"unknown scheme {scheme!r}")
        if probe_lr is not None and probe_lr <= 0:
            raise ValueError("probe_lr must be positive")
        if probe_modes is not None and probe_modes <= 0:
            raise ValueError("probe_modes must be positive")
        self.iterations = iterations
        self.lr = float(lr)
        self.scheme = scheme
        self.refine_probe = refine_probe
        self.probe_lr = probe_lr
        self.backend = backend
        self.dtype = dtype
        self.data_source = data_source
        self.batch_size = resolve_batch_size(batch_size)
        self.prefetch = bool(prefetch)
        self.positions = positions
        self.probe_modes = probe_modes

    # ------------------------------------------------------------------
    def reconstruct(
        self,
        dataset: PtychoDataset,
        callback: Optional[Callable[[int, float, np.ndarray], None]] = None,
        initial_probe: Optional[np.ndarray] = None,
        initial_volume: Optional[np.ndarray] = None,
        *,
        observers: Sequence[Observer] = (),
    ) -> ReconstructionResult:
        """Run the reconstruction; see :class:`ReconstructionResult`.

        ``observers`` receive one structured
        :class:`~repro.core.observers.IterationEvent` per iteration;
        ``callback(iteration, cost, volume)`` is the **deprecated**
        pre-observer hook, still honoured with a
        :class:`DeprecationWarning` (see :mod:`repro.core.observers` for
        the migration recipe).
        """
        if callback is not None:
            warn_legacy_callback(type(self).__name__)
        backend = resolve_backend(self.backend)
        precision = resolve_precision(self.dtype)
        cdtype = precision.complex_dtype
        model = dataset.multislice_model(backend=backend, dtype=precision)
        n_modes = 1 if self.probe_modes is None else int(self.probe_modes)
        scalar_shape = dataset.probe.array.shape
        if n_modes > 1:
            base = (
                np.asarray(initial_probe)
                if initial_probe is not None
                else dataset.probe.array
            )
            if base.ndim == 2:
                # Deterministic expansion — identical to the engine's.
                probe = np.asarray(
                    make_mode_stack(base, n_modes), dtype=cdtype
                )
            elif base.shape == (n_modes,) + scalar_shape:
                probe = np.asarray(base, dtype=cdtype).copy()
            else:
                raise ValueError(
                    f"initial probe shape {base.shape} != "
                    f"{(n_modes,) + scalar_shape} (or scalar "
                    f"{scalar_shape})"
                )
        else:
            arr = (
                np.asarray(initial_probe)
                if initial_probe is not None
                else dataset.probe.array
            )
            if arr.ndim == 3 and arr.shape == (1,) + scalar_shape:
                # Single-mode stacks squeeze to the scalar probe so M=1
                # stays bit-identical to the historical path.
                arr = arr[0]
            probe = np.asarray(arr, dtype=cdtype).copy()
        volume = (
            np.asarray(initial_volume, dtype=cdtype).copy()
            if initial_volume is not None
            else dataset.initial_object(dtype=precision)
        )
        gradient = np.zeros_like(volume)
        probe_gradient = np.zeros_like(probe)
        # Probe steps are preconditioned by |O| ~ 1 (not the probe
        # intensity), scaled down by the N-probe gradient sum.
        probe_step = (
            self.probe_lr
            if self.probe_lr is not None
            else 0.5 / max(dataset.n_probes, 1)
        )

        # A serial run is the 1-rank decomposition; report it as such so
        # downstream consumers (metrics, experiments) see a uniform shape.
        decomp = decompose_gradient(
            dataset.scan, dataset.object_shape, n_ranks=1, halo="exact"
        )
        store, owns_store = open_store(
            self.data_source, dataset=dataset, prefetch=self.prefetch
        )
        planner = BatchPlanner(self.batch_size)
        # Sweeps run in raster order over the active subset — the full
        # scan unless a positions restriction (streaming coverage
        # snapshot) narrows it.
        active = resolve_positions(self.positions, dataset.n_probes)
        indices = (
            tuple(range(dataset.n_probes))
            if active is None
            else tuple(sorted(active))
        )
        # In-memory stores account the full stack (the historical
        # number, byte for byte); out-of-core stores their chunk cache.
        peak_bytes = int(
            volume.nbytes
            + gradient.nbytes
            + store.shard_nbytes(indices)
        )

        def result_snapshot(history: List[float]) -> ReconstructionResult:
            return ReconstructionResult(
                volume=volume.copy(),
                history=list(history),
                messages=0,
                message_bytes=0,
                peak_memory_per_rank=[peak_bytes],
                decomposition=decomp,
                probe=probe.copy() if self.refine_probe else None,
            )

        windows = dataset.scan.windows
        # The "sgd" scheme updates the volume between probe reads, so
        # batching would change the algorithm; only the order-free
        # full-batch gradient sweep runs through the batched model.
        batched = self.scheme == "batch" and self.batch_size > 1

        def sweep_per_position() -> float:
            cost = 0.0
            for i in indices:
                sl = windows[i].global_slices()
                patch = volume[:, sl[0], sl[1]]
                result = model.cost_and_gradient(
                    probe, patch,
                    np.asarray(store.read(i), dtype=precision.real_dtype),
                    compute_probe_grad=self.refine_probe,
                )
                cost += result.cost
                if self.scheme == "batch":
                    gradient[:, sl[0], sl[1]] += result.object_grad
                else:
                    volume[:, sl[0], sl[1]] -= self.lr * result.object_grad
                if self.refine_probe and result.probe_grad is not None:
                    probe_gradient[...] += result.probe_grad
            return cost

        def sweep_batched() -> float:
            # Patch gathers, scatters and scalar accumulation stay in
            # probe order — bit-identical to the per-position sweep.
            cost = 0.0
            for chunk in planner.iter_batches(indices):
                patches = np.stack(
                    [
                        volume[
                            :,
                            windows[i].global_slices()[0],
                            windows[i].global_slices()[1],
                        ]
                        for i in chunk
                    ]
                )
                result = model.cost_and_gradient_batch(
                    probe,
                    patches,
                    np.asarray(
                        store.read_batch(chunk),
                        dtype=precision.real_dtype,
                    ),
                    compute_probe_grad=self.refine_probe,
                )
                for b, i in enumerate(chunk):
                    sl = windows[i].global_slices()
                    cost += float(result.costs[b])
                    gradient[:, sl[0], sl[1]] += result.object_grads[b]
                    if (
                        self.refine_probe
                        and result.probe_grads is not None
                    ):
                        if result.probe_grads.ndim == 4:
                            # Mixed-state stack (M, B, w, w).
                            probe_gradient[...] += result.probe_grads[:, b]
                        else:
                            probe_gradient[...] += result.probe_grads[b]
            return cost

        history: List[float] = []
        emitter = IterationEmitter("serial", self.iterations, observers)
        try:
            for it in range(self.iterations):
                if self.scheme == "batch":
                    gradient[...] = 0.0
                probe_gradient[...] = 0.0
                cost = sweep_batched() if batched else sweep_per_position()
                if self.scheme == "batch":
                    volume -= self.lr * gradient
                if self.refine_probe:
                    probe -= probe_step * probe_gradient
                    if n_modes > 1:
                        # Per-sweep SVD relaxation, matching the
                        # engine's OrthogonalizeProbe phase.
                        probe[...] = orthogonalize_modes(probe)
                history.append(cost)
                if callback is not None:
                    callback(it, cost, volume)
                emitter.emit(
                    it,
                    cost,
                    messages=0,
                    message_bytes=0,
                    peak_memory_bytes=float(peak_bytes),
                    # Live state at call time; see reconstructor.py.
                    snapshot=lambda: result_snapshot(list(history)),
                )

            return result_snapshot(history)
        finally:
            if owns_store:
                store.close()

    # ------------------------------------------------------------------
    def evaluate_cost(
        self, dataset: PtychoDataset, volume: np.ndarray
    ) -> float:
        """The true objective ``F(V)`` of Eq. (1) for an arbitrary volume
        (used to compare convergence across algorithms on equal footing)."""
        model = dataset.multislice_model(
            backend=self.backend, dtype=self.dtype
        )
        probe = dataset.probe.array
        total = 0.0
        for i, window in enumerate(dataset.scan.windows):
            sl = window.global_slices()
            total += model.cost_only(
                probe, volume[:, sl[0], sl[1]], dataset.amplitude(i)
            )
        return total
