"""Synthetic PbTiO3 specimen generation.

The paper evaluates on simulated Lead Titanate (PbTiO3), a tetragonal
perovskite (a ~ 390 pm, c ~ 415 pm).  We build a 3-D projected-potential
volume by tiling the unit cell over the field of view, splitting atoms into
z-slices, and rendering each atom as a Gaussian blob whose weight scales
with atomic number (a standard independent-atom-model approximation).  The
complex per-slice transmission is ``exp(i * sigma * Vp)`` with the
interaction parameter ``sigma`` — each circle visible in the reconstruction
(paper Fig. 6) is one atomic column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.physics.constants import interaction_parameter

__all__ = ["SpecimenSpec", "pbtio3_unit_cell", "make_specimen"]

#: Atomic numbers used for potential weighting.
ATOMIC_NUMBER: Dict[str, int] = {"Pb": 82, "Ti": 22, "O": 8}


@dataclass(frozen=True)
class SpecimenSpec:
    """Parameters of the synthetic crystal volume.

    Attributes
    ----------
    shape:
        ``(rows, cols)`` of the object field of view in pixels.
    n_slices:
        Number of multislice z-slices (paper: 100).
    pixel_size_pm:
        In-plane sampling (paper: 10 pm).
    slice_thickness_pm:
        z-extent of one slice (paper: 125 pm).
    lattice_a_pm / lattice_c_pm:
        Tetragonal PbTiO3 lattice constants.
    blob_sigma_pm:
        Gaussian width of the rendered atomic potential.
    potential_scale:
        Projected-potential amplitude (V*pm) of a Z=1 atom; atoms scale as
        Z^0.8 (screened-Coulomb-like softening).  The default puts a heavy
        (Pb) column at ~0.4 rad of phase per slice — a strong but
        single-scattering-dominated object.
    """

    shape: Tuple[int, int] = (192, 192)
    n_slices: int = 8
    pixel_size_pm: float = 10.0
    slice_thickness_pm: float = 125.0
    lattice_a_pm: float = 390.0
    lattice_c_pm: float = 415.0
    blob_sigma_pm: float = 35.0
    potential_scale: float = 1200.0
    energy_ev: float = 200_000.0

    def __post_init__(self) -> None:
        if self.n_slices <= 0:
            raise ValueError("n_slices must be positive")
        if self.pixel_size_pm <= 0 or self.slice_thickness_pm <= 0:
            raise ValueError("sampling distances must be positive")

    @property
    def thickness_pm(self) -> float:
        """Total specimen thickness."""
        return self.n_slices * self.slice_thickness_pm


def pbtio3_unit_cell() -> List[Tuple[str, float, float, float]]:
    """Fractional atomic positions of the PbTiO3 perovskite unit cell.

    Returns ``(element, fx, fy, fz)`` tuples: Pb at the corners, Ti at the
    body center (with the characteristic ferroelectric z-offset), O at the
    face centers.
    """
    return [
        ("Pb", 0.0, 0.0, 0.0),
        ("Ti", 0.5, 0.5, 0.54),  # ferroelectric displacement along c
        ("O", 0.5, 0.5, 0.10),
        ("O", 0.5, 0.0, 0.60),
        ("O", 0.0, 0.5, 0.60),
    ]


def _render_atoms(
    canvas: np.ndarray,
    positions_px: Sequence[Tuple[float, float, float]],
    sigma_px: float,
) -> None:
    """Accumulate Gaussian blobs at ``(row, col, weight)`` positions onto
    ``canvas`` in place, using a local stamp for efficiency."""
    rows, cols = canvas.shape
    half = max(2, int(np.ceil(4.0 * sigma_px)))
    stamp_n = 2 * half + 1
    yy, xx = np.mgrid[0:stamp_n, 0:stamp_n] - half
    for row, col, weight in positions_px:
        ir, ic = int(round(row)), int(round(col))
        fr, fc = row - ir, col - ic
        stamp = weight * np.exp(
            -((yy - fr) ** 2 + (xx - fc) ** 2) / (2.0 * sigma_px**2)
        )
        r0, r1 = ir - half, ir + half + 1
        c0, c1 = ic - half, ic + half + 1
        sr0, sc0 = max(0, -r0), max(0, -c0)
        sr1 = stamp_n - max(0, r1 - rows)
        sc1 = stamp_n - max(0, c1 - cols)
        if sr0 >= sr1 or sc0 >= sc1:
            continue
        canvas[max(0, r0) : min(rows, r1), max(0, c0) : min(cols, c1)] += stamp[
            sr0:sr1, sc0:sc1
        ]


def make_specimen(spec: SpecimenSpec, seed: int | None = None) -> np.ndarray:
    """Build the complex transmission volume for ``spec``.

    Returns
    -------
    object_slices:
        ``(n_slices, rows, cols)`` complex128 array of per-slice
        transmission functions ``exp(i * sigma * Vp_s)``; unit modulus
        (pure phase object) plus a weak absorption term so the amplitude
        also carries signal.
    seed:
        When given, adds a small random static displacement field
        (thermal/defect disorder) so the specimen is not perfectly
        periodic — keeps the reconstruction problem well-posed.
    """
    rows, cols = spec.shape
    a_px = spec.lattice_a_pm / spec.pixel_size_pm
    sigma_px = spec.blob_sigma_pm / spec.pixel_size_pm
    rng = np.random.default_rng(seed)
    jitter = 0.06 * a_px if seed is not None else 0.0

    cells_r = int(np.ceil(rows / a_px)) + 1
    cells_c = int(np.ceil(cols / a_px)) + 1
    basis = pbtio3_unit_cell()

    # Bucket atoms into slices by their fractional z within the repeating
    # c-axis stacking mapped onto the slice grid.
    per_slice: List[List[Tuple[float, float, float]]] = [
        [] for _ in range(spec.n_slices)
    ]
    c_cells = max(1, int(round(spec.thickness_pm / spec.lattice_c_pm)))
    for cell_r in range(cells_r):
        for cell_c in range(cells_c):
            for cz in range(c_cells):
                for element, fx, fy, fz in basis:
                    z_pm = (cz + fz) * spec.lattice_c_pm
                    s = int(z_pm / spec.slice_thickness_pm)
                    if s >= spec.n_slices:
                        continue
                    row = (cell_r + fy) * a_px
                    col = (cell_c + fx) * a_px
                    if jitter:
                        row += rng.normal(0.0, jitter)
                        col += rng.normal(0.0, jitter)
                    if -4 * sigma_px <= row < rows + 4 * sigma_px and (
                        -4 * sigma_px <= col < cols + 4 * sigma_px
                    ):
                        weight = spec.potential_scale * (
                            ATOMIC_NUMBER[element] ** 0.8
                        )
                        per_slice[s].append((row, col, weight))

    sigma_int = interaction_parameter(spec.energy_ev)
    out = np.empty((spec.n_slices, rows, cols), dtype=np.complex128)
    for s in range(spec.n_slices):
        vp = np.zeros((rows, cols), dtype=np.float64)
        _render_atoms(vp, per_slice[s], sigma_px)
        phase = sigma_int * vp
        # Weak absorption proportional to the potential keeps |O| < 1
        # where atoms sit, giving amplitude contrast as well.
        absorption = 0.05 * sigma_int * vp
        out[s] = np.exp(1j * phase - absorption)
    return out
