"""The multislice forward operator ``G`` of Eq. (1) and its adjoint.

Forward model for probe location ``i`` (probe ``p``, object slices ``O_s``
restricted to the probe window ``W_i``):

.. code-block:: text

    psi_0   = p
    phi_s   = psi_s * O_s[W_i]          (transmission, s = 0..S-1)
    psi_s+1 = Fresnel(phi_s)            (propagation, s < S-1)
    Psi     = FFT(phi_{S-1})            (far-field to the detector)

The data-fit term is the amplitude residual of Eq. (1):
``f_i = sum_k ( |y_i|_k - |Psi|_k )^2``.

The *individual image gradient* ``df_i/dO`` is obtained by the adjoint
(back-propagation) recursion and — crucially for the paper's decomposition
— is supported entirely inside the probe window ``W_i``:

.. code-block:: text

    r       = (|Psi| - |y_i|) * Psi / |Psi|
    chi_S-1 = IFFT(r)
    grad_s  = conj(psi_s) * chi_s
    chi_s-1 = Fresnel_adjoint( conj(O_s) * chi_s )

Wirtinger-calculus convention: we return ``df/d(conj O)``, the direction of
steepest *ascent*, so a descent step is ``O <- O - alpha * grad``.  All the
gradients are verified against numerical finite differences in the tests.

Mixed-state probes
------------------
Every entry point also accepts an ``(M, w, w)`` *mode stack* (see
:mod:`repro.physics.probe`): the measured intensity is then the
incoherent sum over modes, ``A = sqrt(sum_m |Psi_m|^2)``, the standard
partially-coherent treatment.  The per-mode detector adjoint seed is
``(A - y) * Psi_m / A`` (structurally the scalar formula at M=1), the
object gradient sums the per-mode contributions, and probe gradients
stay per-mode.  Dispatch is explicit: a 2-D probe — or a single-mode
stack — runs the original scalar code verbatim, because
``sqrt(|x|^2)`` is *not* bitwise ``np.abs(x)`` (hypot), and the
``probe_modes=1`` path must stay bit-identical to the scalar one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.backend.base import (
    ArrayBackend,
    PrecisionPolicy,
    resolve_backend,
    resolve_precision,
)
from repro.physics.propagation import FresnelPropagator
from repro.utils.fftutils import fft2c, ifft2c

__all__ = [
    "MultisliceModel",
    "GradientResult",
    "BatchGradientResult",
    "probe_gradient",
]

#: Guard against division by zero where the simulated amplitude vanishes.
_AMPLITUDE_EPS = 1e-12


@dataclass
class GradientResult:
    """Output of one probe-location gradient evaluation.

    Attributes
    ----------
    object_grad:
        ``(n_slices, window, window)`` complex array: the individual image
        gradient ``df_i/d(conj O)`` restricted to the probe window (for a
        mode stack, summed over modes — the object is shared).
    cost:
        The scalar data-fit value ``f_i``.
    exit_amplitude:
        ``|Psi|`` at the detector (useful for diagnostics / dose studies);
        the incoherent amplitude for a mode stack.
    probe_grad:
        ``df_i/d(conj p)`` — populated when probe refinement is requested
        (joint probe/object optimization, an extension beyond the paper).
        Shape follows the probe: ``(window, window)`` for a scalar probe,
        ``(M, window, window)`` for a mode stack.
    """

    object_grad: np.ndarray
    cost: float
    exit_amplitude: Optional[np.ndarray] = None
    probe_grad: Optional[np.ndarray] = None


@dataclass
class BatchGradientResult:
    """Output of one *batched* gradient evaluation (``B`` probe
    locations through the multislice sweep as one stack).

    Per-item values are bit-identical to ``B`` separate
    :meth:`MultisliceModel.cost_and_gradient` calls — pocketfft applies
    the same 2-D kernels along a batch axis, and every other step is
    elementwise — which is what lets batched execution stay
    fingerprint-identical to the per-position reference (pinned by the
    parity suite in ``tests/data``).

    Attributes
    ----------
    object_grads:
        ``(B, n_slices, window, window)`` individual image gradients.
    costs:
        ``(B,)`` float64 data-fit values, one per probe location.
    probe_grads:
        Per-location probe gradients, populated when probe refinement is
        requested: ``(B, window, window)`` for a scalar probe,
        ``(M, B, window, window)`` for a mode stack (item ``b`` is
        ``probe_grads[:, b]``).
    """

    object_grads: np.ndarray
    costs: np.ndarray
    probe_grads: Optional[np.ndarray] = None


class MultisliceModel:
    """Multislice simulator bound to a fixed probe-window geometry.

    One instance is shared by all probe locations of a reconstruction
    (the propagator kernel depends only on the patch shape and slice
    spacing, both constant across the scan).

    Parameters
    ----------
    window:
        Probe patch side length in pixels (= detector side length).
    n_slices:
        Number of object slices.
    pixel_size_pm, wavelength_pm, slice_thickness_pm:
        Physical sampling; see :class:`repro.physics.propagation.FresnelPropagator`.
    backend / dtype:
        Compute backend and precision policy (see :mod:`repro.backend`);
        ``None`` resolves the ambient defaults.  All per-probe work —
        the forward sweep, the retained incident waves, the adjoint
        recursion — runs at the policy's complex width on the chosen
        backend; the default (``numpy``/``complex128``) is bit-identical
        to the historical hard-wired behaviour.
    """

    def __init__(
        self,
        window: int,
        n_slices: int,
        pixel_size_pm: float,
        wavelength_pm: float,
        slice_thickness_pm: float,
        *,
        backend: Union[str, ArrayBackend, None] = None,
        dtype: Union[str, PrecisionPolicy, None] = None,
    ) -> None:
        if window <= 0 or n_slices <= 0:
            raise ValueError("window and n_slices must be positive")
        self.window = int(window)
        self.n_slices = int(n_slices)
        self.pixel_size_pm = float(pixel_size_pm)
        self.wavelength_pm = float(wavelength_pm)
        self.slice_thickness_pm = float(slice_thickness_pm)
        self.backend = resolve_backend(backend)
        self.precision = resolve_precision(dtype)
        self._prop = FresnelPropagator(
            (self.window, self.window),
            pixel_size_pm,
            wavelength_pm,
            slice_thickness_pm,
            backend=self.backend,
            dtype=self.precision,
        )

    @property
    def propagator(self) -> FresnelPropagator:
        """The inter-slice Fresnel propagator."""
        return self._prop

    # ------------------------------------------------------------------
    # Mixed-state dispatch
    # ------------------------------------------------------------------
    def _probe_modes(self, probe: np.ndarray) -> Optional[np.ndarray]:
        """The ``(M, w, w)`` stack when ``probe`` is genuinely
        mixed-state, ``None`` when the scalar path must run.

        A 2-D probe and a single-mode ``(1, w, w)`` stack both dispatch
        scalar (``None``): the M=1 arithmetic must be *bitwise* the
        historical path, and the stacked formulation computes
        ``sqrt(|x|^2)`` where the scalar one computes ``np.abs`` — same
        value, different bits.
        """
        arr = np.asarray(probe)
        if arr.ndim == 3 and arr.shape[0] > 1:
            if arr.shape[1:] != (self.window, self.window):
                raise ValueError(
                    f"probe stack shape {arr.shape} != "
                    f"(M, {self.window}, {self.window})"
                )
            return arr
        if arr.ndim not in (2, 3):
            raise ValueError(
                f"probe must be (w, w) or (M, w, w), got shape {arr.shape}"
            )
        return None

    @staticmethod
    def _scalar_probe(probe: np.ndarray) -> np.ndarray:
        """The 2-D probe of a scalar dispatch (unwraps a (1, w, w) stack)."""
        arr = np.asarray(probe)
        return arr[0] if arr.ndim == 3 else arr

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(
        self, probe: np.ndarray, object_patch: np.ndarray
    ) -> np.ndarray:
        """Simulate the far-field complex wave ``Psi = G(p, O[W])``.

        Parameters
        ----------
        probe:
            ``(window, window)`` complex probe, or an ``(M, window,
            window)`` mode stack — the far field is then per-mode,
            ``(M, window, window)``.
        object_patch:
            ``(n_slices, window, window)`` complex transmission patch.
        """
        self._check_patch(object_patch)
        cdtype = self.precision.complex_dtype
        modes = self._probe_modes(probe)
        psi = np.asarray(
            probe if modes is None else modes, dtype=cdtype
        )
        object_patch = np.asarray(object_patch, dtype=cdtype)
        for s in range(self.n_slices):
            phi = psi * object_patch[s]
            if s < self.n_slices - 1:
                psi = self._prop.forward(phi)
            else:
                psi = phi
        return fft2c(psi, self.backend)

    def forward_amplitude(
        self, probe: np.ndarray, object_patch: np.ndarray
    ) -> np.ndarray:
        """``|G(p, O[W])|`` — the quantity compared against ``|y_i|``.

        For a mode stack this is the incoherent detector amplitude
        ``sqrt(sum_m |Psi_m|^2)`` (shape ``(window, window)``).
        """
        far_field = self.forward(probe, object_patch)
        if far_field.ndim == 3:
            if far_field.shape[0] == 1:
                return np.abs(far_field[0])
            return np.sqrt(
                np.sum(
                    far_field.real * far_field.real
                    + far_field.imag * far_field.imag,
                    axis=0,
                )
            )
        return np.abs(far_field)

    # ------------------------------------------------------------------
    # Cost + gradient (adjoint)
    # ------------------------------------------------------------------
    def cost_and_gradient(
        self,
        probe: np.ndarray,
        object_patch: np.ndarray,
        measured_amplitude: np.ndarray,
        keep_exit_wave: bool = False,
        compute_probe_grad: bool = False,
    ) -> GradientResult:
        """Evaluate ``f_i`` and its gradient with one forward + one
        backward multislice sweep.

        The incident waves ``psi_s`` are retained from the forward sweep
        (O(S) memory in patches), the standard checkpoint-free adjoint.

        A mixed-state ``(M, window, window)`` probe runs the incoherent
        formulation (per-mode ``probe_grad``); a single-mode stack
        delegates to this scalar path bit-for-bit.
        """
        self._check_patch(object_patch)
        if measured_amplitude.shape != (self.window, self.window):
            raise ValueError(
                f"measurement shape {measured_amplitude.shape} != "
                f"({self.window}, {self.window})"
            )
        modes = self._probe_modes(probe)
        if modes is not None:
            return self._cost_and_gradient_modes(
                modes,
                object_patch,
                measured_amplitude,
                keep_exit_wave,
                compute_probe_grad,
            )
        if np.asarray(probe).ndim == 3:
            # Single-mode stack: scalar arithmetic, stack-shaped output.
            result = self.cost_and_gradient(
                self._scalar_probe(probe),
                object_patch,
                measured_amplitude,
                keep_exit_wave,
                compute_probe_grad,
            )
            if result.probe_grad is not None:
                result.probe_grad = result.probe_grad.reshape(
                    (1,) + result.probe_grad.shape
                )
            return result

        cdtype = self.precision.complex_dtype
        measured = np.asarray(
            measured_amplitude, dtype=self.precision.real_dtype
        )
        object_patch = np.asarray(object_patch, dtype=cdtype)

        # Forward sweep, remembering every incident wave psi_s.
        incident = np.empty(
            (self.n_slices, self.window, self.window), dtype=cdtype
        )
        psi = np.asarray(probe, dtype=cdtype)
        for s in range(self.n_slices):
            incident[s] = psi
            phi = psi * object_patch[s]
            psi = self._prop.forward(phi) if s < self.n_slices - 1 else phi
        far_field = fft2c(psi, self.backend)
        amplitude = np.abs(far_field)

        residual = amplitude - measured
        # Accumulate the scalar in float64 regardless of policy (a no-op
        # on the double path; a stability guard on the single path).
        cost = float(np.sum(residual * residual, dtype=np.float64))

        # Detector-plane adjoint seed: d f / d conj(Psi).
        phase = far_field / (amplitude + _AMPLITUDE_EPS)
        chi = ifft2c(residual * phase, self.backend)

        grad = np.empty_like(incident)
        for s in range(self.n_slices - 1, -1, -1):
            grad[s] = np.conj(incident[s]) * chi
            if s > 0:
                chi = self._prop.adjoint(np.conj(object_patch[s]) * chi)
        result = GradientResult(
            object_grad=grad,
            cost=cost,
            exit_amplitude=amplitude if keep_exit_wave else None,
        )
        if compute_probe_grad:
            # d f / d conj(p): one more chain step through slice 0.
            result.probe_grad = np.conj(object_patch[0]) * chi
        return result

    def _cost_and_gradient_modes(
        self,
        modes: np.ndarray,
        object_patch: np.ndarray,
        measured_amplitude: np.ndarray,
        keep_exit_wave: bool,
        compute_probe_grad: bool,
    ) -> GradientResult:
        """The incoherent (mixed-state) cost+gradient for an ``(M, w, w)``
        stack, M > 1.

        ``A = sqrt(sum_m |Psi_m|^2)``; the per-mode detector seed
        ``(A - y) * Psi_m / (A + eps)`` reduces structurally to the
        scalar formula at one mode.  The object gradient sums mode
        contributions (the object is shared); the probe gradient stays
        per-mode.
        """
        cdtype = self.precision.complex_dtype
        measured = np.asarray(
            measured_amplitude, dtype=self.precision.real_dtype
        )
        object_patch = np.asarray(object_patch, dtype=cdtype)
        n_modes = modes.shape[0]

        incident = np.empty(
            (self.n_slices, n_modes, self.window, self.window), dtype=cdtype
        )
        psi = np.asarray(modes, dtype=cdtype)
        for s in range(self.n_slices):
            incident[s] = psi
            phi = psi * object_patch[s]
            psi = self._prop.forward(phi) if s < self.n_slices - 1 else phi
        far_field = fft2c(psi, self.backend)
        amplitude = np.sqrt(
            np.sum(
                far_field.real * far_field.real
                + far_field.imag * far_field.imag,
                axis=0,
            )
        )

        residual = amplitude - measured
        cost = float(np.sum(residual * residual, dtype=np.float64))

        # Per-mode adjoint seed: d f / d conj(Psi_m) broadcast over M.
        phase = far_field / (amplitude + _AMPLITUDE_EPS)
        chi = ifft2c(residual * phase, self.backend)

        grad = np.empty(
            (self.n_slices, self.window, self.window), dtype=cdtype
        )
        for s in range(self.n_slices - 1, -1, -1):
            grad[s] = np.sum(np.conj(incident[s]) * chi, axis=0)
            if s > 0:
                chi = self._prop.adjoint(np.conj(object_patch[s]) * chi)
        result = GradientResult(
            object_grad=grad,
            cost=cost,
            exit_amplitude=amplitude if keep_exit_wave else None,
        )
        if compute_probe_grad:
            result.probe_grad = np.conj(object_patch[0]) * chi
        return result

    def cost_and_gradient_batch(
        self,
        probe: np.ndarray,
        object_patches: np.ndarray,
        measured_amplitudes: np.ndarray,
        compute_probe_grad: bool = False,
    ) -> BatchGradientResult:
        """Evaluate ``B`` probe locations as one batched sweep.

        ``object_patches`` is ``(B, n_slices, window, window)`` and
        ``measured_amplitudes`` ``(B, window, window)``; every FFT runs
        once over the whole ``(B, window, window)`` stack — the batched
        hot path the data pipeline exists to exploit.  Accepts
        non-contiguous inputs (gathered patch stacks, strided store
        reads) without further copies beyond the dtype conversion.

        A mixed-state ``(M, w, w)`` probe batches over ``(M, B, w, w)``
        stacks (per-mode ``probe_grads``); a single-mode stack delegates
        to this scalar path bit-for-bit.
        """
        modes = self._probe_modes(probe)
        if modes is not None:
            return self._cost_and_gradient_batch_modes(
                modes, object_patches, measured_amplitudes,
                compute_probe_grad,
            )
        if np.asarray(probe).ndim == 3:
            result = self.cost_and_gradient_batch(
                self._scalar_probe(probe),
                object_patches,
                measured_amplitudes,
                compute_probe_grad,
            )
            if result.probe_grads is not None:
                result.probe_grads = result.probe_grads.reshape(
                    (1,) + result.probe_grads.shape
                )
            return result
        object_patches = np.asarray(
            object_patches, dtype=self.precision.complex_dtype
        )
        if (
            object_patches.ndim != 4
            or object_patches.shape[1:]
            != (self.n_slices, self.window, self.window)
        ):
            raise ValueError(
                f"object patches shape {object_patches.shape} != "
                f"(B, {self.n_slices}, {self.window}, {self.window})"
            )
        batch = object_patches.shape[0]
        measured = np.asarray(
            measured_amplitudes, dtype=self.precision.real_dtype
        )
        if measured.shape != (batch, self.window, self.window):
            raise ValueError(
                f"measurement shape {measured.shape} != "
                f"({batch}, {self.window}, {self.window})"
            )
        cdtype = self.precision.complex_dtype

        # Forward sweep over the stack, remembering every incident wave.
        incident = np.empty(
            (self.n_slices, batch, self.window, self.window), dtype=cdtype
        )
        psi = np.broadcast_to(
            np.asarray(probe, dtype=cdtype), (batch, self.window, self.window)
        )
        for s in range(self.n_slices):
            incident[s] = psi
            phi = psi * object_patches[:, s]
            psi = self._prop.forward(phi) if s < self.n_slices - 1 else phi
        far_field = fft2c(psi, self.backend)
        amplitude = np.abs(far_field)

        residual = amplitude - measured
        costs = np.sum(
            residual * residual, axis=(-2, -1), dtype=np.float64
        )

        phase = far_field / (amplitude + _AMPLITUDE_EPS)
        chi = ifft2c(residual * phase, self.backend)

        grads = np.empty(
            (batch, self.n_slices, self.window, self.window), dtype=cdtype
        )
        for s in range(self.n_slices - 1, -1, -1):
            grads[:, s] = np.conj(incident[s]) * chi
            if s > 0:
                chi = self._prop.adjoint(
                    np.conj(object_patches[:, s]) * chi
                )
        result = BatchGradientResult(object_grads=grads, costs=costs)
        if compute_probe_grad:
            result.probe_grads = np.conj(object_patches[:, 0]) * chi
        return result

    def _cost_and_gradient_batch_modes(
        self,
        modes: np.ndarray,
        object_patches: np.ndarray,
        measured_amplitudes: np.ndarray,
        compute_probe_grad: bool,
    ) -> BatchGradientResult:
        """Batched mixed-state sweep: ``M`` modes x ``B`` locations as
        one ``(M, B, w, w)`` stack through every FFT."""
        cdtype = self.precision.complex_dtype
        object_patches = np.asarray(object_patches, dtype=cdtype)
        if (
            object_patches.ndim != 4
            or object_patches.shape[1:]
            != (self.n_slices, self.window, self.window)
        ):
            raise ValueError(
                f"object patches shape {object_patches.shape} != "
                f"(B, {self.n_slices}, {self.window}, {self.window})"
            )
        batch = object_patches.shape[0]
        measured = np.asarray(
            measured_amplitudes, dtype=self.precision.real_dtype
        )
        if measured.shape != (batch, self.window, self.window):
            raise ValueError(
                f"measurement shape {measured.shape} != "
                f"({batch}, {self.window}, {self.window})"
            )
        n_modes = modes.shape[0]

        incident = np.empty(
            (self.n_slices, n_modes, batch, self.window, self.window),
            dtype=cdtype,
        )
        psi = np.broadcast_to(
            np.asarray(modes, dtype=cdtype)[:, None],
            (n_modes, batch, self.window, self.window),
        )
        for s in range(self.n_slices):
            incident[s] = psi
            phi = psi * object_patches[:, s]
            psi = self._prop.forward(phi) if s < self.n_slices - 1 else phi
        far_field = fft2c(psi, self.backend)
        amplitude = np.sqrt(
            np.sum(
                far_field.real * far_field.real
                + far_field.imag * far_field.imag,
                axis=0,
            )
        )

        residual = amplitude - measured
        costs = np.sum(
            residual * residual, axis=(-2, -1), dtype=np.float64
        )

        phase = far_field / (amplitude + _AMPLITUDE_EPS)
        chi = ifft2c(residual * phase, self.backend)

        grads = np.empty(
            (batch, self.n_slices, self.window, self.window), dtype=cdtype
        )
        for s in range(self.n_slices - 1, -1, -1):
            grads[:, s] = np.sum(np.conj(incident[s]) * chi, axis=0)
            if s > 0:
                chi = self._prop.adjoint(
                    np.conj(object_patches[:, s]) * chi
                )
        result = BatchGradientResult(object_grads=grads, costs=costs)
        if compute_probe_grad:
            result.probe_grads = np.conj(object_patches[:, 0]) * chi
        return result

    def cost_only(
        self,
        probe: np.ndarray,
        object_patch: np.ndarray,
        measured_amplitude: np.ndarray,
    ) -> float:
        """Just the data-fit value ``f_i`` (used for convergence curves)."""
        amplitude = self.forward_amplitude(probe, object_patch)
        residual = amplitude - measured_amplitude
        return float(np.sum(residual * residual))

    # ------------------------------------------------------------------
    def flops_per_probe(self) -> float:
        """Modeled floating-point work of one cost+gradient evaluation.

        Dominated by FFTs: forward does ``2(S-1) + 1`` transforms and the
        adjoint mirrors it, each ``5 * n^2 * log2(n^2)`` flops, plus O(S n^2)
        pointwise work.  This is the ``N log N`` growth the paper credits
        for the super-linear strong scaling (Sec. VI-C).
        """
        n2 = float(self.window * self.window)
        ffts = 2 * (2 * (self.n_slices - 1) + 1) + 2  # fwd+adj chains + det pair
        fft_flops = 5.0 * n2 * np.log2(max(n2, 2.0))
        pointwise = 12.0 * self.n_slices * n2
        return ffts * fft_flops + pointwise

    def _check_patch(self, object_patch: np.ndarray) -> None:
        expected = (self.n_slices, self.window, self.window)
        if object_patch.shape != expected:
            raise ValueError(
                f"object patch shape {object_patch.shape} != {expected}"
            )


def probe_gradient(
    model: MultisliceModel,
    probe: np.ndarray,
    object_patch: np.ndarray,
    measured_amplitude: np.ndarray,
) -> np.ndarray:
    """Gradient of ``f_i`` with respect to ``conj(p)`` (probe refinement).

    Provided as an extension hook (the paper fixes the probe); shares the
    adjoint machinery of :meth:`MultisliceModel.cost_and_gradient`.
    """
    result = model.cost_and_gradient(
        probe, object_patch, measured_amplitude, compute_probe_grad=True
    )
    assert result.probe_grad is not None
    return result.probe_grad
