"""The multislice forward operator ``G`` of Eq. (1) and its adjoint.

Forward model for probe location ``i`` (probe ``p``, object slices ``O_s``
restricted to the probe window ``W_i``):

.. code-block:: text

    psi_0   = p
    phi_s   = psi_s * O_s[W_i]          (transmission, s = 0..S-1)
    psi_s+1 = Fresnel(phi_s)            (propagation, s < S-1)
    Psi     = FFT(phi_{S-1})            (far-field to the detector)

The data-fit term is the amplitude residual of Eq. (1):
``f_i = sum_k ( |y_i|_k - |Psi|_k )^2``.

The *individual image gradient* ``df_i/dO`` is obtained by the adjoint
(back-propagation) recursion and — crucially for the paper's decomposition
— is supported entirely inside the probe window ``W_i``:

.. code-block:: text

    r       = (|Psi| - |y_i|) * Psi / |Psi|
    chi_S-1 = IFFT(r)
    grad_s  = conj(psi_s) * chi_s
    chi_s-1 = Fresnel_adjoint( conj(O_s) * chi_s )

Wirtinger-calculus convention: we return ``df/d(conj O)``, the direction of
steepest *ascent*, so a descent step is ``O <- O - alpha * grad``.  All the
gradients are verified against numerical finite differences in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.backend.base import (
    ArrayBackend,
    PrecisionPolicy,
    resolve_backend,
    resolve_precision,
)
from repro.physics.propagation import FresnelPropagator
from repro.utils.fftutils import fft2c, ifft2c

__all__ = [
    "MultisliceModel",
    "GradientResult",
    "BatchGradientResult",
    "probe_gradient",
]

#: Guard against division by zero where the simulated amplitude vanishes.
_AMPLITUDE_EPS = 1e-12


@dataclass
class GradientResult:
    """Output of one probe-location gradient evaluation.

    Attributes
    ----------
    object_grad:
        ``(n_slices, window, window)`` complex array: the individual image
        gradient ``df_i/d(conj O)`` restricted to the probe window.
    cost:
        The scalar data-fit value ``f_i``.
    exit_amplitude:
        ``|Psi|`` at the detector (useful for diagnostics / dose studies).
    probe_grad:
        ``df_i/d(conj p)`` — populated when probe refinement is requested
        (joint probe/object optimization, an extension beyond the paper).
    """

    object_grad: np.ndarray
    cost: float
    exit_amplitude: Optional[np.ndarray] = None
    probe_grad: Optional[np.ndarray] = None


@dataclass
class BatchGradientResult:
    """Output of one *batched* gradient evaluation (``B`` probe
    locations through the multislice sweep as one stack).

    Per-item values are bit-identical to ``B`` separate
    :meth:`MultisliceModel.cost_and_gradient` calls — pocketfft applies
    the same 2-D kernels along a batch axis, and every other step is
    elementwise — which is what lets batched execution stay
    fingerprint-identical to the per-position reference (pinned by the
    parity suite in ``tests/data``).

    Attributes
    ----------
    object_grads:
        ``(B, n_slices, window, window)`` individual image gradients.
    costs:
        ``(B,)`` float64 data-fit values, one per probe location.
    probe_grads:
        ``(B, window, window)`` per-location probe gradients, populated
        when probe refinement is requested.
    """

    object_grads: np.ndarray
    costs: np.ndarray
    probe_grads: Optional[np.ndarray] = None


class MultisliceModel:
    """Multislice simulator bound to a fixed probe-window geometry.

    One instance is shared by all probe locations of a reconstruction
    (the propagator kernel depends only on the patch shape and slice
    spacing, both constant across the scan).

    Parameters
    ----------
    window:
        Probe patch side length in pixels (= detector side length).
    n_slices:
        Number of object slices.
    pixel_size_pm, wavelength_pm, slice_thickness_pm:
        Physical sampling; see :class:`repro.physics.propagation.FresnelPropagator`.
    backend / dtype:
        Compute backend and precision policy (see :mod:`repro.backend`);
        ``None`` resolves the ambient defaults.  All per-probe work —
        the forward sweep, the retained incident waves, the adjoint
        recursion — runs at the policy's complex width on the chosen
        backend; the default (``numpy``/``complex128``) is bit-identical
        to the historical hard-wired behaviour.
    """

    def __init__(
        self,
        window: int,
        n_slices: int,
        pixel_size_pm: float,
        wavelength_pm: float,
        slice_thickness_pm: float,
        *,
        backend: Union[str, ArrayBackend, None] = None,
        dtype: Union[str, PrecisionPolicy, None] = None,
    ) -> None:
        if window <= 0 or n_slices <= 0:
            raise ValueError("window and n_slices must be positive")
        self.window = int(window)
        self.n_slices = int(n_slices)
        self.pixel_size_pm = float(pixel_size_pm)
        self.wavelength_pm = float(wavelength_pm)
        self.slice_thickness_pm = float(slice_thickness_pm)
        self.backend = resolve_backend(backend)
        self.precision = resolve_precision(dtype)
        self._prop = FresnelPropagator(
            (self.window, self.window),
            pixel_size_pm,
            wavelength_pm,
            slice_thickness_pm,
            backend=self.backend,
            dtype=self.precision,
        )

    @property
    def propagator(self) -> FresnelPropagator:
        """The inter-slice Fresnel propagator."""
        return self._prop

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(
        self, probe: np.ndarray, object_patch: np.ndarray
    ) -> np.ndarray:
        """Simulate the far-field complex wave ``Psi = G(p, O[W])``.

        Parameters
        ----------
        probe:
            ``(window, window)`` complex probe.
        object_patch:
            ``(n_slices, window, window)`` complex transmission patch.
        """
        self._check_patch(object_patch)
        cdtype = self.precision.complex_dtype
        psi = np.asarray(probe, dtype=cdtype)
        object_patch = np.asarray(object_patch, dtype=cdtype)
        for s in range(self.n_slices):
            phi = psi * object_patch[s]
            if s < self.n_slices - 1:
                psi = self._prop.forward(phi)
            else:
                psi = phi
        return fft2c(psi, self.backend)

    def forward_amplitude(
        self, probe: np.ndarray, object_patch: np.ndarray
    ) -> np.ndarray:
        """``|G(p, O[W])|`` — the quantity compared against ``|y_i|``."""
        return np.abs(self.forward(probe, object_patch))

    # ------------------------------------------------------------------
    # Cost + gradient (adjoint)
    # ------------------------------------------------------------------
    def cost_and_gradient(
        self,
        probe: np.ndarray,
        object_patch: np.ndarray,
        measured_amplitude: np.ndarray,
        keep_exit_wave: bool = False,
        compute_probe_grad: bool = False,
    ) -> GradientResult:
        """Evaluate ``f_i`` and its gradient with one forward + one
        backward multislice sweep.

        The incident waves ``psi_s`` are retained from the forward sweep
        (O(S) memory in patches), the standard checkpoint-free adjoint.
        """
        self._check_patch(object_patch)
        if measured_amplitude.shape != (self.window, self.window):
            raise ValueError(
                f"measurement shape {measured_amplitude.shape} != "
                f"({self.window}, {self.window})"
            )

        cdtype = self.precision.complex_dtype
        measured = np.asarray(
            measured_amplitude, dtype=self.precision.real_dtype
        )
        object_patch = np.asarray(object_patch, dtype=cdtype)

        # Forward sweep, remembering every incident wave psi_s.
        incident = np.empty(
            (self.n_slices, self.window, self.window), dtype=cdtype
        )
        psi = np.asarray(probe, dtype=cdtype)
        for s in range(self.n_slices):
            incident[s] = psi
            phi = psi * object_patch[s]
            psi = self._prop.forward(phi) if s < self.n_slices - 1 else phi
        far_field = fft2c(psi, self.backend)
        amplitude = np.abs(far_field)

        residual = amplitude - measured
        # Accumulate the scalar in float64 regardless of policy (a no-op
        # on the double path; a stability guard on the single path).
        cost = float(np.sum(residual * residual, dtype=np.float64))

        # Detector-plane adjoint seed: d f / d conj(Psi).
        phase = far_field / (amplitude + _AMPLITUDE_EPS)
        chi = ifft2c(residual * phase, self.backend)

        grad = np.empty_like(incident)
        for s in range(self.n_slices - 1, -1, -1):
            grad[s] = np.conj(incident[s]) * chi
            if s > 0:
                chi = self._prop.adjoint(np.conj(object_patch[s]) * chi)
        result = GradientResult(
            object_grad=grad,
            cost=cost,
            exit_amplitude=amplitude if keep_exit_wave else None,
        )
        if compute_probe_grad:
            # d f / d conj(p): one more chain step through slice 0.
            result.probe_grad = np.conj(object_patch[0]) * chi
        return result

    def cost_and_gradient_batch(
        self,
        probe: np.ndarray,
        object_patches: np.ndarray,
        measured_amplitudes: np.ndarray,
        compute_probe_grad: bool = False,
    ) -> BatchGradientResult:
        """Evaluate ``B`` probe locations as one batched sweep.

        ``object_patches`` is ``(B, n_slices, window, window)`` and
        ``measured_amplitudes`` ``(B, window, window)``; every FFT runs
        once over the whole ``(B, window, window)`` stack — the batched
        hot path the data pipeline exists to exploit.  Accepts
        non-contiguous inputs (gathered patch stacks, strided store
        reads) without further copies beyond the dtype conversion.
        """
        object_patches = np.asarray(
            object_patches, dtype=self.precision.complex_dtype
        )
        if (
            object_patches.ndim != 4
            or object_patches.shape[1:]
            != (self.n_slices, self.window, self.window)
        ):
            raise ValueError(
                f"object patches shape {object_patches.shape} != "
                f"(B, {self.n_slices}, {self.window}, {self.window})"
            )
        batch = object_patches.shape[0]
        measured = np.asarray(
            measured_amplitudes, dtype=self.precision.real_dtype
        )
        if measured.shape != (batch, self.window, self.window):
            raise ValueError(
                f"measurement shape {measured.shape} != "
                f"({batch}, {self.window}, {self.window})"
            )
        cdtype = self.precision.complex_dtype

        # Forward sweep over the stack, remembering every incident wave.
        incident = np.empty(
            (self.n_slices, batch, self.window, self.window), dtype=cdtype
        )
        psi = np.broadcast_to(
            np.asarray(probe, dtype=cdtype), (batch, self.window, self.window)
        )
        for s in range(self.n_slices):
            incident[s] = psi
            phi = psi * object_patches[:, s]
            psi = self._prop.forward(phi) if s < self.n_slices - 1 else phi
        far_field = fft2c(psi, self.backend)
        amplitude = np.abs(far_field)

        residual = amplitude - measured
        costs = np.sum(
            residual * residual, axis=(-2, -1), dtype=np.float64
        )

        phase = far_field / (amplitude + _AMPLITUDE_EPS)
        chi = ifft2c(residual * phase, self.backend)

        grads = np.empty(
            (batch, self.n_slices, self.window, self.window), dtype=cdtype
        )
        for s in range(self.n_slices - 1, -1, -1):
            grads[:, s] = np.conj(incident[s]) * chi
            if s > 0:
                chi = self._prop.adjoint(
                    np.conj(object_patches[:, s]) * chi
                )
        result = BatchGradientResult(object_grads=grads, costs=costs)
        if compute_probe_grad:
            result.probe_grads = np.conj(object_patches[:, 0]) * chi
        return result

    def cost_only(
        self,
        probe: np.ndarray,
        object_patch: np.ndarray,
        measured_amplitude: np.ndarray,
    ) -> float:
        """Just the data-fit value ``f_i`` (used for convergence curves)."""
        amplitude = self.forward_amplitude(probe, object_patch)
        residual = amplitude - measured_amplitude
        return float(np.sum(residual * residual))

    # ------------------------------------------------------------------
    def flops_per_probe(self) -> float:
        """Modeled floating-point work of one cost+gradient evaluation.

        Dominated by FFTs: forward does ``2(S-1) + 1`` transforms and the
        adjoint mirrors it, each ``5 * n^2 * log2(n^2)`` flops, plus O(S n^2)
        pointwise work.  This is the ``N log N`` growth the paper credits
        for the super-linear strong scaling (Sec. VI-C).
        """
        n2 = float(self.window * self.window)
        ffts = 2 * (2 * (self.n_slices - 1) + 1) + 2  # fwd+adj chains + det pair
        fft_flops = 5.0 * n2 * np.log2(max(n2, 2.0))
        pointwise = 12.0 * self.n_slices * n2
        return ffts * fft_flops + pointwise

    def _check_patch(self, object_patch: np.ndarray) -> None:
        expected = (self.n_slices, self.window, self.window)
        if object_patch.shape != expected:
            raise ValueError(
                f"object patch shape {object_patch.shape} != {expected}"
            )


def probe_gradient(
    model: MultisliceModel,
    probe: np.ndarray,
    object_patch: np.ndarray,
    measured_amplitude: np.ndarray,
) -> np.ndarray:
    """Gradient of ``f_i`` with respect to ``conj(p)`` (probe refinement).

    Provided as an extension hook (the paper fixes the probe); shares the
    adjoint machinery of :meth:`MultisliceModel.cost_and_gradient`.
    """
    result = model.cost_and_gradient(
        probe, object_patch, measured_amplitude, compute_probe_grad=True
    )
    assert result.probe_grad is not None
    return result.probe_grad
