"""Focused electron probe formation.

The paper's acquisitions use a 30 mrad probe-forming aperture at 200 keV
with 25 nm defocus.  A condenser-aperture probe is an aperture disc in the
back focal plane with a defocus (and optionally spherical aberration) phase,
inverse-Fourier-transformed to the object plane:

``p(r) = IFFT[ A(k) * exp(-i * chi(k)) ]``,
``chi(k) = pi * lambda * df * |k|^2 + (pi/2) * Cs * lambda^3 * |k|^4``.

The probe radius in the object plane — which determines the probe "circle"
of the paper's Figs. 1-3 and hence the overlap geometry — grows with
defocus roughly as ``r = alpha * df`` (alpha = aperture half-angle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.physics.constants import electron_wavelength_pm
from repro.utils.fftutils import fftfreq_grid, ifft2c

__all__ = [
    "ProbeSpec",
    "Probe",
    "make_probe",
    "as_mode_stack",
    "make_mode_stack",
    "mode_powers",
    "orthogonalize_modes",
]


@dataclass(frozen=True)
class ProbeSpec:
    """Physical description of the probe-forming optics.

    Defaults follow the paper's acquisition parameters: 200 keV beam,
    30 mrad aperture, 25 nm (=25000 pm) defocus.
    """

    energy_ev: float = 200_000.0
    aperture_rad: float = 30e-3
    defocus_pm: float = 25_000.0
    cs_pm: float = 0.0
    window: int = 64
    pixel_size_pm: float = 10.0

    def __post_init__(self) -> None:
        if self.energy_ev <= 0:
            raise ValueError("energy_ev must be positive")
        if self.aperture_rad <= 0:
            raise ValueError("aperture_rad must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.pixel_size_pm <= 0:
            raise ValueError("pixel_size_pm must be positive")

    @property
    def wavelength_pm(self) -> float:
        """Electron wavelength for the configured beam energy."""
        return electron_wavelength_pm(self.energy_ev)

    @property
    def nominal_radius_pm(self) -> float:
        """Geometric probe radius in the object plane.

        Sum of the defocus disc (``alpha * |df|``) and the
        diffraction-limited spot (``0.61 * lambda / alpha``).  This is the
        "probe location circle" radius of the paper's figures and feeds the
        scan-overlap geometry.
        """
        return self.aperture_rad * abs(self.defocus_pm) + (
            0.61 * self.wavelength_pm / self.aperture_rad
        )

    @property
    def nominal_radius_px(self) -> float:
        """Probe radius expressed in object pixels."""
        return self.nominal_radius_pm / self.pixel_size_pm


@dataclass
class Probe:
    """A realized complex probe wavefunction.

    Attributes
    ----------
    array:
        ``(window, window)`` complex field, normalized to unit total
        intensity (``sum |p|^2 == 1``).
    spec:
        The :class:`ProbeSpec` that produced it.
    """

    array: np.ndarray
    spec: ProbeSpec = field(repr=False)

    @property
    def window(self) -> int:
        """Side length of the probe patch in pixels."""
        return self.array.shape[0]

    @property
    def intensity(self) -> np.ndarray:
        """``|p|^2`` of the probe."""
        return np.abs(self.array) ** 2

    def support_radius_px(self, fraction: float = 0.99) -> float:
        """Radius (pixels) of the disc containing ``fraction`` of the probe
        intensity.  Used by the decomposition to size halos tightly."""
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        n = self.window
        yy, xx = np.mgrid[0:n, 0:n]
        r = np.hypot(yy - (n - 1) / 2.0, xx - (n - 1) / 2.0).ravel()
        w = self.intensity.ravel()
        order = np.argsort(r)
        cumulative = np.cumsum(w[order])
        total = cumulative[-1]
        idx = int(np.searchsorted(cumulative, fraction * total))
        idx = min(idx, len(order) - 1)
        return float(r[order][idx])


def as_mode_stack(probe: np.ndarray) -> np.ndarray:
    """View ``probe`` as an ``(M, w, w)`` mode stack.

    A 2-D scalar probe becomes the single-mode stack ``(1, w, w)``
    (a reshape — no copy, no value change); a 3-D stack passes through.
    This is the shape contract every mixed-state consumer normalizes
    against: *legacy 2-D probes mean M=1*.
    """
    arr = np.asarray(probe)
    if arr.ndim == 2:
        return arr.reshape((1,) + arr.shape)
    if arr.ndim == 3:
        return arr
    raise ValueError(
        f"probe must be (w, w) or (M, w, w), got shape {arr.shape}"
    )


def mode_powers(modes: np.ndarray) -> np.ndarray:
    """Per-mode intensity ``sum |psi_m|^2`` of a stack (2-D accepted)."""
    stack = as_mode_stack(modes)
    return np.sum(
        stack.real * stack.real + stack.imag * stack.imag, axis=(-2, -1)
    )


def orthogonalize_modes(modes: np.ndarray) -> np.ndarray:
    """Project a mode stack onto its nearest orthogonal, energy-ordered
    relaxation (the standard mixed-state cleanup pass).

    The stack is flattened to an ``(M, w*w)`` matrix and SVD-factored;
    the returned modes are ``diag(S) @ Vh`` reshaped back — the same
    span and the same total intensity (``sum_m |psi_m|^2`` summed over
    pixels is the squared Frobenius norm, invariant under the unitary
    ``U`` that is dropped), but with pairwise-orthogonal modes sorted by
    descending energy.

    ``M=1`` is an explicit identity (returned unchanged, same object):
    a single mode is trivially orthogonal, and the SVD would introduce
    an arbitrary global phase — violating the load-bearing invariant
    that single-mode runs stay bit-identical to the scalar path.
    """
    stack = as_mode_stack(modes)
    if stack.shape[0] == 1:
        return modes
    m = stack.shape[0]
    flat = stack.reshape(m, -1)
    _, s, vh = np.linalg.svd(flat, full_matrices=False)
    return (s[:, None] * vh).reshape(stack.shape)


def make_mode_stack(
    base: np.ndarray, n_modes: int, power_ratio: float = 0.25
) -> np.ndarray:
    """Deterministically expand a scalar probe into an ``(M, w, w)``
    incoherent mode stack.

    Mode 0 is the base probe; higher modes are the base modulated by
    centered coordinate polynomials (Hermite-Gauss-like: ``y``, ``x``,
    ``y*x``, ``y^2``, ...), Gram-Schmidt-orthogonalized against all
    earlier modes.  Mode powers decay geometrically (``power_ratio``
    per mode) and are normalized so the stack's *total* intensity
    equals the base probe's — a unit-intensity base yields a
    unit-intensity mixed state, keeping step-size heuristics valid.

    No randomness anywhere: the same base and ``M`` always produce the
    same stack, which is what makes mixed-state reconstructions (and
    their cancel→resume legs) deterministic end to end.
    """
    if n_modes <= 0:
        raise ValueError("n_modes must be positive")
    if not (0.0 < power_ratio < 1.0):
        raise ValueError("power_ratio must be in (0, 1)")
    arr = np.asarray(base)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(
            f"base probe must be square 2-D, got shape {arr.shape}"
        )
    if n_modes == 1:
        return arr.reshape((1,) + arr.shape).copy()
    n = arr.shape[0]
    # Centered, window-normalized coordinates for the modulations.
    yy, xx = np.mgrid[0:n, 0:n]
    y = (yy - (n - 1) / 2.0) / n
    x = (xx - (n - 1) / 2.0) / n
    # Polynomial degrees in (y, x), low order first: enough distinct
    # modulations for any reasonable M without repetition.
    degrees = sorted(
        ((dy + dx, dy, dx) for dy in range(8) for dx in range(8)),
        key=lambda t: (t[0], t[1]),
    )[1 : n_modes]
    modes = np.empty((n_modes, n, n), dtype=np.complex128)
    modes[0] = arr
    base_power = float(np.sum(np.abs(arr) ** 2))
    if base_power == 0.0:
        raise ValueError("base probe has zero intensity")
    for k, (_, dy, dx) in enumerate(degrees, start=1):
        candidate = arr * (y**dy) * (x**dx)
        # Gram-Schmidt against every earlier mode.
        for j in range(k):
            prev = modes[j]
            denom = np.vdot(prev, prev)
            candidate = candidate - (np.vdot(prev, candidate) / denom) * prev
        norm = np.sqrt(np.sum(np.abs(candidate) ** 2))
        if norm == 0.0:  # pragma: no cover - degenerate base
            raise ValueError(
                f"mode {k} modulation vanished; base probe too degenerate "
                f"for {n_modes} modes"
            )
        modes[k] = candidate / norm
    # Geometric power ladder, renormalized to the base's total power.
    weights = power_ratio ** np.arange(n_modes, dtype=np.float64)
    weights *= base_power / weights.sum()
    modes[0] = arr / np.sqrt(base_power)
    modes *= np.sqrt(weights)[:, None, None]
    return modes


def make_probe(spec: ProbeSpec) -> Probe:
    """Synthesize the probe wavefunction described by ``spec``."""
    n = spec.window
    lam = spec.wavelength_pm
    ky, kx = fftfreq_grid((n, n), spec.pixel_size_pm)
    k2 = ky * ky + kx * kx
    k = np.sqrt(k2)

    # Aperture: disc of half-angle alpha -> spatial frequency alpha/lambda.
    k_cut = spec.aperture_rad / lam
    aperture = (k <= k_cut).astype(np.complex128)

    # Aberration phase chi(k): defocus + spherical.
    chi = np.pi * lam * spec.defocus_pm * k2
    if spec.cs_pm != 0.0:
        chi = chi + 0.5 * np.pi * spec.cs_pm * lam**3 * k2 * k2
    pupil = aperture * np.exp(-1j * chi)

    field_r = ifft2c(pupil)
    norm = np.sqrt(np.sum(np.abs(field_r) ** 2))
    if norm == 0.0:
        raise ValueError(
            "probe aperture does not intersect the sampled frequency band; "
            "increase window or pixel size"
        )
    return Probe(array=(field_r / norm).astype(np.complex128), spec=spec)
