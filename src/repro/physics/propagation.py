"""Fresnel free-space propagation between object slices.

The multislice method alternates transmission through a thin slice with
near-field propagation across the inter-slice spacing.  We use the
band-limited Fresnel propagator in the spatial-frequency domain:

``psi_out = IFFT( H(k) * FFT(psi_in) )`` with
``H(k) = exp(-i * pi * lambda * dz * |k|^2)``.

``H`` has unit modulus, so propagation is unitary — intensity is conserved
slice to slice, which the tests assert.  The operator's adjoint is
propagation with ``conj(H)``, used by the analytic gradient.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.backend.base import (
    ArrayBackend,
    PrecisionPolicy,
    resolve_backend,
    resolve_precision,
)
from repro.utils.fftutils import fft2c, fftfreq_grid, ifft2c

__all__ = ["FresnelPropagator"]


class FresnelPropagator:
    """Precomputed Fresnel propagator for a fixed field shape.

    Parameters
    ----------
    shape:
        ``(rows, cols)`` of the wavefield patch.
    pixel_size_pm:
        Real-space sampling in picometers.
    wavelength_pm:
        Electron wavelength in picometers.
    dz_pm:
        Propagation distance (slice spacing) in picometers.
    bandlimit:
        Fraction of the Nyquist band kept (2/3 by default, the standard
        multislice anti-aliasing choice).  Frequencies beyond the limit are
        zeroed, making the operator a contraction there; inside the band it
        is unitary.
    backend / dtype:
        Compute backend and precision policy (see :mod:`repro.backend`);
        ``None`` resolves the ambient defaults.  The kernel is stored at
        the policy's complex width so a ``complex64`` field stays
        ``complex64`` through propagation.
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        pixel_size_pm: float,
        wavelength_pm: float,
        dz_pm: float,
        bandlimit: float = 2.0 / 3.0,
        *,
        backend: Union[str, ArrayBackend, None] = None,
        dtype: Union[str, PrecisionPolicy, None] = None,
    ) -> None:
        if pixel_size_pm <= 0 or wavelength_pm <= 0:
            raise ValueError("pixel size and wavelength must be positive")
        if not (0.0 < bandlimit <= 1.0):
            raise ValueError(f"bandlimit must be in (0, 1], got {bandlimit}")
        self.shape = (int(shape[0]), int(shape[1]))
        self.pixel_size_pm = float(pixel_size_pm)
        self.wavelength_pm = float(wavelength_pm)
        self.dz_pm = float(dz_pm)
        self.bandlimit = float(bandlimit)
        self.backend = resolve_backend(backend)
        self.precision = resolve_precision(dtype)

        ky, kx = fftfreq_grid(self.shape, self.pixel_size_pm)
        k2 = ky * ky + kx * kx
        phase = -np.pi * self.wavelength_pm * self.dz_pm * k2
        kernel = np.exp(1j * phase)
        # Band limit: the classic 2/3 rule prevents aliasing of the
        # quadratic phase at the field corners.
        k_nyq = 0.5 / self.pixel_size_pm
        kernel[np.sqrt(k2) > self.bandlimit * k_nyq] = 0.0
        self._kernel = kernel.astype(self.precision.complex_dtype)
        self._kernel_conj = np.conj(self._kernel)

    @property
    def kernel(self) -> np.ndarray:
        """The centered frequency-domain transfer function (read-only)."""
        return self._kernel

    def forward(self, field: np.ndarray) -> np.ndarray:
        """Propagate ``field`` forward by ``dz_pm``."""
        b = self.backend
        return ifft2c(self._kernel * fft2c(field, b), b)

    def adjoint(self, field: np.ndarray) -> np.ndarray:
        """Adjoint of :meth:`forward` (= backward propagation for a unitary
        kernel); used when back-propagating gradients through slices."""
        b = self.backend
        return ifft2c(self._kernel_conj * fft2c(field, b), b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FresnelPropagator(shape={self.shape}, dz={self.dz_pm} pm, "
            f"lambda={self.wavelength_pm:.4f} pm)"
        )
