"""Raster scan patterns.

The probe visits a ``rows x cols`` grid of positions in raster order
(paper Fig. 1(b)); the step size is derived from the probe radius and the
requested overlap ratio.  Ptychography needs >70% overlap between
neighbouring probe circles for artifact-free reconstruction (paper Sec.
II-A), and the *high*-overlap regime (>80%), where circles overlap
non-adjacent neighbours, is what motivates the forward/backward gradient
passes of Sec. IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.utils.geometry import Rect

__all__ = ["ScanSpec", "RasterScan", "probe_window"]


@dataclass(frozen=True)
class ScanSpec:
    """Scan geometry description.

    Attributes
    ----------
    grid:
        ``(n_rows, n_cols)`` of probe positions; the paper's small dataset
        is 63x66 = 4158 positions, the large one 126x132 = 16632.
    step_px:
        Raster step in object pixels.
    margin_px:
        Distance from the field-of-view edge to the first probe *window*
        corner, so every probe window stays inside the object.
    """

    grid: Tuple[int, int]
    step_px: float
    margin_px: int = 0

    def __post_init__(self) -> None:
        if self.grid[0] <= 0 or self.grid[1] <= 0:
            raise ValueError(f"scan grid must be positive, got {self.grid}")
        if self.step_px <= 0:
            raise ValueError("step_px must be positive")
        if self.margin_px < 0:
            raise ValueError("margin_px must be non-negative")

    @property
    def n_positions(self) -> int:
        """Total number of probe locations."""
        return self.grid[0] * self.grid[1]

    @staticmethod
    def from_overlap(
        grid: Tuple[int, int],
        probe_radius_px: float,
        overlap_ratio: float,
        margin_px: int = 0,
    ) -> "ScanSpec":
        """Derive the raster step from a target circle-overlap ratio.

        ``overlap_ratio`` is the linear overlap fraction of neighbouring
        probe circles: ``step = (1 - overlap) * 2 * R``.  At 70% overlap a
        circle overlaps its direct neighbours only; at >=80% it also reaches
        the second neighbours (the paper's "high overlap" regime).
        """
        if not (0.0 <= overlap_ratio < 1.0):
            raise ValueError(f"overlap_ratio must be in [0,1), got {overlap_ratio}")
        step = (1.0 - overlap_ratio) * 2.0 * probe_radius_px
        if step < 1.0:
            step = 1.0
        return ScanSpec(grid=grid, step_px=step, margin_px=margin_px)


def probe_window(
    center_row: float, center_col: float, window: int
) -> Rect:
    """Integer pixel window of a probe patch centred at a scan position.

    The window is the ``window x window`` region the probe array multiplies;
    outside it the individual gradient is exactly zero — the locality
    property (paper Sec. III) the whole decomposition rests on.
    """
    r0 = int(round(center_row - window / 2.0))
    c0 = int(round(center_col - window / 2.0))
    return Rect(r0, r0 + window, c0, c0 + window)


class RasterScan:
    """Concrete raster scan: positions, windows, and geometry queries."""

    def __init__(self, spec: ScanSpec, probe_window_px: int) -> None:
        self.spec = spec
        self.window = int(probe_window_px)
        n_r, n_c = spec.grid
        offset = spec.margin_px + self.window / 2.0
        rows = offset + spec.step_px * np.arange(n_r)
        cols = offset + spec.step_px * np.arange(n_c)
        # Raster order: row-major, matching the paper's time ordering.
        self._centers = np.stack(
            [
                np.repeat(rows, n_c),
                np.tile(cols, n_r),
            ],
            axis=1,
        )
        self._windows: List[Rect] = [
            probe_window(r, c, self.window) for r, c in self._centers
        ]

    # ------------------------------------------------------------------
    @property
    def n_positions(self) -> int:
        """Number of probe locations."""
        return len(self._windows)

    @property
    def centers(self) -> np.ndarray:
        """``(N, 2)`` array of (row, col) scan centres in pixels."""
        return self._centers

    @property
    def windows(self) -> List[Rect]:
        """Probe windows in raster (time) order."""
        return list(self._windows)

    def window_of(self, index: int) -> Rect:
        """Probe window of scan position ``index``."""
        return self._windows[index]

    def grid_index(self, index: int) -> Tuple[int, int]:
        """``(scan_row, scan_col)`` of flat position ``index``."""
        n_c = self.spec.grid[1]
        return divmod(index, n_c)[0], index % n_c

    def required_fov(self) -> Tuple[int, int]:
        """Minimal object field of view containing every probe window."""
        r1 = max(w.r1 for w in self._windows) + self.spec.margin_px
        c1 = max(w.c1 for w in self._windows) + self.spec.margin_px
        return (int(r1), int(c1))

    def overlap_ratio(self) -> float:
        """Linear overlap of neighbouring probe *windows* (diagnostic)."""
        if self.n_positions < 2:
            return 0.0
        return max(0.0, 1.0 - self.spec.step_px / self.window)

    def __iter__(self) -> Iterator[Rect]:
        return iter(self._windows)

    def __len__(self) -> int:
        return self.n_positions
