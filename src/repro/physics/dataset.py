"""End-to-end diffraction dataset simulation.

Builds the synthetic Lead Titanate acquisitions of the paper's Table I:

================  =====================  =====================
quantity          small PbTiO3           large PbTiO3
================  =====================  =====================
measurements y    1024 x 1024 x 4158     1024 x 1024 x 16632
scan grid         63 x 66                126 x 132
reconstruction V  1536 x 1536 x 100      3072 x 3072 x 100
voxel size        10 x 10 x 125 pm^3     10 x 10 x 125 pm^3
================  =====================  =====================

Full-size specs are provided for the analytic memory/performance models;
:func:`scaled_pbtio3_spec` produces geometry-preserving reductions small
enough to *actually reconstruct* in tests, examples and the image-quality
experiments (Figs. 8 and 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

import numpy as np

from repro.backend.base import ArrayBackend, PrecisionPolicy, resolve_precision
from repro.physics.multislice import MultisliceModel
from repro.physics.potential import SpecimenSpec, make_specimen
from repro.physics.probe import Probe, ProbeSpec, make_mode_stack, make_probe
from repro.physics.scan import RasterScan, ScanSpec

__all__ = [
    "DatasetSpec",
    "PtychoDataset",
    "simulate_dataset",
    "small_pbtio3_spec",
    "large_pbtio3_spec",
    "scaled_pbtio3_spec",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Complete description of an acquisition (geometry + optics).

    ``object_shape`` is ``(rows, cols)`` of the reconstruction V in pixels;
    ``detector_px`` is the side length of each diffraction measurement,
    which equals the probe-window side in this implementation.

    ``volume_dtype`` is the *storage* precision of the reconstruction
    volume — ``complex64`` by default, matching the paper's
    implementation constraint (the large dataset at 6 GPUs only fits at
    8 bytes per voxel, Table III) — and drives every byte-accounting
    property here and in :mod:`repro.perfmodel`.  Compute precision is a
    separate knob (:class:`repro.backend.PrecisionPolicy`): the numeric
    engine defaults to ``complex128`` for bit-exact reference runs.
    """

    name: str
    scan_grid: Tuple[int, int]
    object_shape: Tuple[int, int]
    n_slices: int
    detector_px: int
    pixel_size_pm: float = 10.0
    slice_thickness_pm: float = 125.0
    energy_ev: float = 200_000.0
    aperture_rad: float = 30e-3
    defocus_pm: float = 25_000.0
    overlap_ratio: float = 0.85
    measurement_dtype: str = "float16"
    volume_dtype: str = "complex64"

    def __post_init__(self) -> None:
        if self.detector_px <= 0:
            raise ValueError("detector_px must be positive")
        if self.scan_grid[0] <= 0 or self.scan_grid[1] <= 0:
            raise ValueError("scan_grid entries must be positive")
        if self.volume_dtype not in ("complex64", "complex128"):
            raise ValueError(
                f"volume_dtype must be 'complex64' or 'complex128', "
                f"got {self.volume_dtype!r}"
            )

    # ------------------------------------------------------------------
    @property
    def n_probes(self) -> int:
        """Number of probe locations N."""
        return self.scan_grid[0] * self.scan_grid[1]

    @property
    def probe_spec(self) -> ProbeSpec:
        """Probe optics implied by this dataset."""
        return ProbeSpec(
            energy_ev=self.energy_ev,
            aperture_rad=self.aperture_rad,
            defocus_pm=self.defocus_pm,
            window=self.detector_px,
            pixel_size_pm=self.pixel_size_pm,
        )

    def scan_spec(self) -> ScanSpec:
        """Raster scan spec: step chosen so probe windows tile the object
        field of view with the configured window overlap."""
        n_r, n_c = self.scan_grid
        rows, cols = self.object_shape
        # Fit the scan inside the object: choose the largest step that
        # keeps every window inside, capped by the overlap-derived step.
        usable_r = rows - self.detector_px
        usable_c = cols - self.detector_px
        step_fit = min(
            usable_r / max(n_r - 1, 1), usable_c / max(n_c - 1, 1)
        )
        step_overlap = (1.0 - self.overlap_ratio) * self.detector_px
        step = max(1.0, min(step_fit, step_overlap))
        return ScanSpec(grid=self.scan_grid, step_px=step, margin_px=0)

    # ------------------------------------------------------------------
    # Memory accounting (Table I and the memory model build on these)
    # ------------------------------------------------------------------
    @property
    def measurement_bytes_total(self) -> int:
        """Bytes of all measured amplitudes at ``measurement_dtype``."""
        itemsize = np.dtype(self.measurement_dtype).itemsize
        return self.n_probes * self.detector_px**2 * itemsize

    @property
    def volume_bytes_total(self) -> int:
        """Bytes of the full reconstruction volume V at ``volume_dtype``
        (8 bytes/voxel for the default complex64 storage)."""
        rows, cols = self.object_shape
        itemsize = np.dtype(self.volume_dtype).itemsize
        return rows * cols * self.n_slices * itemsize

    @property
    def voxels_total(self) -> int:
        """Total voxel count of V."""
        return self.object_shape[0] * self.object_shape[1] * self.n_slices


def small_pbtio3_spec() -> DatasetSpec:
    """Paper Table I, column 'Lead Titanate small' (full size)."""
    return DatasetSpec(
        name="pbtio3-small",
        scan_grid=(63, 66),
        object_shape=(1536, 1536),
        n_slices=100,
        detector_px=1024,
    )


def large_pbtio3_spec() -> DatasetSpec:
    """Paper Table I, column 'Lead Titanate large' (full size)."""
    return DatasetSpec(
        name="pbtio3-large",
        scan_grid=(126, 132),
        object_shape=(3072, 3072),
        n_slices=100,
        detector_px=1024,
    )


def scaled_pbtio3_spec(
    scan_grid: Tuple[int, int] = (9, 9),
    detector_px: int = 32,
    n_slices: int = 4,
    overlap_ratio: float = 0.75,
    object_margin_px: int = 4,
    circle_overlap: Optional[float] = None,
) -> DatasetSpec:
    """A geometry-preserving scaled-down dataset that can be reconstructed
    in seconds.

    The probe-window overlap ratio, raster structure and multislice depth
    mirror the full acquisitions; only absolute pixel counts shrink.  The
    object field of view is derived from the scan so every probe window
    fits with ``object_margin_px`` to spare.  The defocus is scaled so the
    probe disc occupies the same *fraction* of the window as in the
    full-size acquisition geometry (radius ~ window/4), keeping the
    overlap structure of the paper's figures.

    ``circle_overlap``, when given, overrides ``overlap_ratio`` and sets
    the raster step from the *probe-circle* overlap instead of the window
    overlap: ``step = (1 - circle_overlap) * probe_diameter`` with the
    probe diameter ~ ``detector_px / 2``.  Values >= 0.8 put the scan in
    the paper's high-overlap regime (circles overlapping non-adjacent
    tiles, Sec. IV) — the regime of the seam and convergence experiments.
    """
    if circle_overlap is not None:
        if not (0.0 <= circle_overlap < 1.0):
            raise ValueError("circle_overlap must be in [0, 1)")
        step = max(1.0, (1.0 - circle_overlap) * (detector_px / 2.0))
        overlap_ratio = 1.0 - step / detector_px
    else:
        step = max(1.0, (1.0 - overlap_ratio) * detector_px)
    rows = int(
        math.ceil(detector_px + step * (scan_grid[0] - 1))
    ) + 2 * object_margin_px
    cols = int(
        math.ceil(detector_px + step * (scan_grid[1] - 1))
    ) + 2 * object_margin_px
    pixel_size_pm = 10.0
    aperture_rad = 30e-3
    target_radius_pm = (detector_px / 4.0) * pixel_size_pm
    defocus_pm = target_radius_pm / aperture_rad
    return DatasetSpec(
        name=f"pbtio3-scaled-{scan_grid[0]}x{scan_grid[1]}",
        scan_grid=scan_grid,
        object_shape=(rows, cols),
        n_slices=n_slices,
        detector_px=detector_px,
        pixel_size_pm=pixel_size_pm,
        aperture_rad=aperture_rad,
        defocus_pm=defocus_pm,
        overlap_ratio=overlap_ratio,
    )


def suggest_lr(dataset: "PtychoDataset", alpha: float = 0.5) -> float:
    """A robust gradient-descent step size for ``dataset``.

    The object gradient scales with the probe intensity, so the natural
    preconditioned step is ``alpha / max|p|^2`` (the ePIE convention,
    ref. [13] of the paper).  ``alpha`` in (0, 1] trades speed for
    stability; 0.5 converges for every dataset in the test suite.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    peak = float(np.max(np.abs(dataset.probe.array) ** 2))
    return alpha / peak


@dataclass
class PtychoDataset:
    """A realized ptychographic acquisition.

    Attributes
    ----------
    spec:
        The generating :class:`DatasetSpec`.
    probe:
        The complex probe wavefunction.
    scan:
        The raster scan (positions + probe windows).
    amplitudes:
        ``(N, det, det)`` measured far-field amplitudes ``|y_i|``.
    ground_truth:
        ``(n_slices, rows, cols)`` complex object used to simulate the
        data (kept for quality metrics; a real instrument would not have
        it, and no algorithm reads it during reconstruction).
    """

    spec: DatasetSpec
    probe: Probe
    scan: RasterScan
    amplitudes: np.ndarray
    ground_truth: Optional[np.ndarray] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def n_probes(self) -> int:
        """Number of probe locations."""
        return self.scan.n_positions

    @property
    def object_shape(self) -> Tuple[int, int]:
        """``(rows, cols)`` of the reconstruction field of view."""
        return self.spec.object_shape

    @property
    def n_slices(self) -> int:
        """Multislice depth of the reconstruction volume."""
        return self.spec.n_slices

    def multislice_model(
        self,
        backend: Union[str, ArrayBackend, None] = None,
        dtype: Union[str, PrecisionPolicy, None] = None,
    ) -> MultisliceModel:
        """The forward model matching this acquisition's geometry,
        executing on ``backend`` at ``dtype`` precision (ambient defaults
        when ``None``; see :mod:`repro.backend`)."""
        return MultisliceModel(
            window=self.spec.detector_px,
            n_slices=self.spec.n_slices,
            pixel_size_pm=self.spec.pixel_size_pm,
            wavelength_pm=self.probe.spec.wavelength_pm,
            slice_thickness_pm=self.spec.slice_thickness_pm,
            backend=backend,
            dtype=dtype,
        )

    def amplitude(
        self, index: int, dtype: Union[str, np.dtype, type] = np.float64
    ) -> np.ndarray:
        """Measured amplitude ``|y_i|`` at compute precision (float64 by
        default; pass the precision policy's ``real_dtype`` for the
        complex64 fast path)."""
        return np.asarray(self.amplitudes[index], dtype=dtype)

    def initial_object(
        self, dtype: Union[str, PrecisionPolicy, None] = None
    ) -> np.ndarray:
        """Flat (vacuum) initial guess for the reconstruction volume at
        the given compute precision (ambient default: ``complex128``
        unless ``REPRO_DTYPE`` says otherwise)."""
        rows, cols = self.object_shape
        cdtype = resolve_precision(dtype).complex_dtype
        return np.ones((self.n_slices, rows, cols), dtype=cdtype)


def simulate_dataset(
    spec: DatasetSpec,
    seed: int = 0,
    poisson_dose: Optional[float] = None,
    probe_modes: Optional[int] = None,
) -> PtychoDataset:
    """Simulate a full acquisition for ``spec``.

    Parameters
    ----------
    spec:
        Acquisition description.  Use :func:`scaled_pbtio3_spec` for sizes
        that are tractable to simulate in-process.
    seed:
        Seed for the specimen disorder and the detector noise.
    poisson_dose:
        When given, the expected number of electrons per probe position;
        shot noise is applied to the diffraction *intensity* at that dose
        (the ML formulation's robustness to dose is one of its selling
        points over Fourier deconvolution, paper Sec. II-B).
    probe_modes:
        When > 1, illuminate with the deterministic mixed-state stack
        :func:`repro.physics.probe.make_mode_stack` expands from the
        coherent probe: recorded intensity is the *incoherent* sum over
        modes (partial coherence).  ``None``/1 keeps the coherent
        simulation bit-identical to the historical path.  The returned
        dataset's ``probe`` is always the scalar base probe — the
        acquisition does not hand the reconstruction the mode stack.

    Notes
    -----
    Simulation cost scales as ``N * S * det^2 log det``; the full-size specs
    of Table I are deliberately not simulated here (70 GB of measurements)
    — the analytic models consume their :class:`DatasetSpec` directly.
    """
    probe = make_probe(spec.probe_spec)
    scan = RasterScan(spec.scan_spec(), probe_window_px=spec.detector_px)

    rows, cols = spec.object_shape
    fov_r, fov_c = scan.required_fov()
    if fov_r > rows or fov_c > cols:
        raise ValueError(
            f"scan requires field of view {(fov_r, fov_c)} but object is "
            f"{spec.object_shape}; enlarge object_shape or reduce the scan"
        )

    specimen = make_specimen(
        SpecimenSpec(
            shape=spec.object_shape,
            n_slices=spec.n_slices,
            pixel_size_pm=spec.pixel_size_pm,
            slice_thickness_pm=spec.slice_thickness_pm,
            energy_ev=spec.energy_ev,
        ),
        seed=seed,
    )

    model = MultisliceModel(
        window=spec.detector_px,
        n_slices=spec.n_slices,
        pixel_size_pm=spec.pixel_size_pm,
        wavelength_pm=probe.spec.wavelength_pm,
        slice_thickness_pm=spec.slice_thickness_pm,
    )

    n_modes = 1 if probe_modes is None else int(probe_modes)
    if n_modes < 1:
        raise ValueError("probe_modes must be positive")
    mode_stack = (
        make_mode_stack(probe.array, n_modes) if n_modes > 1 else None
    )

    rng = np.random.default_rng(seed + 1)
    amplitudes = np.empty(
        (scan.n_positions, spec.detector_px, spec.detector_px),
        dtype=np.dtype(spec.measurement_dtype),
    )
    for i, window in enumerate(scan.windows):
        sl = window.global_slices()
        patch = specimen[:, sl[0], sl[1]]
        if mode_stack is not None:
            far_field = model.forward(mode_stack, patch)
            intensity = np.sum(np.abs(far_field) ** 2, axis=0)
        else:
            far_field = model.forward(probe.array, patch)
            intensity = np.abs(far_field) ** 2
        if poisson_dose is not None:
            total = float(intensity.sum())
            if total > 0:
                scale = poisson_dose / total
                intensity = rng.poisson(intensity * scale) / scale
        amplitudes[i] = np.sqrt(intensity)

    return PtychoDataset(
        spec=spec,
        probe=probe,
        scan=scan,
        amplitudes=amplitudes,
        ground_truth=specimen,
    )
