"""Relativistic electron-optics constants.

The paper images PbTiO3 at 200 keV; the de Broglie wavelength at that
energy (2.508 pm) sets the diffraction-limited resolution that makes
10 pm voxels meaningful.  Formulas follow Kirkland, *Advanced Computing in
Electron Microscopy*, ch. 2.
"""

from __future__ import annotations

import math

__all__ = [
    "PLANCK_EV_S",
    "SPEED_OF_LIGHT_PM_S",
    "ELECTRON_REST_ENERGY_EV",
    "electron_wavelength_pm",
    "relativistic_mass_factor",
    "interaction_parameter",
]

#: Planck constant in eV*s.
PLANCK_EV_S = 4.135667696e-15

#: Speed of light in picometers per second.
SPEED_OF_LIGHT_PM_S = 2.99792458e20

#: Electron rest energy m0*c^2 in eV.
ELECTRON_REST_ENERGY_EV = 510_998.95


def electron_wavelength_pm(energy_ev: float) -> float:
    """Relativistic electron de Broglie wavelength in picometers.

    ``lambda = h*c / sqrt(E * (E + 2*m0c^2))`` with the beam energy ``E``
    in eV.  At 200 keV this returns ~2.508 pm, the textbook value.
    """
    if energy_ev <= 0:
        raise ValueError(f"beam energy must be positive, got {energy_ev}")
    return (PLANCK_EV_S * SPEED_OF_LIGHT_PM_S) / math.sqrt(
        energy_ev * (energy_ev + 2.0 * ELECTRON_REST_ENERGY_EV)
    )


def relativistic_mass_factor(energy_ev: float) -> float:
    """Lorentz factor ``gamma = 1 + E / m0c^2`` for beam energy ``E``."""
    if energy_ev <= 0:
        raise ValueError(f"beam energy must be positive, got {energy_ev}")
    return 1.0 + energy_ev / ELECTRON_REST_ENERGY_EV


def interaction_parameter(energy_ev: float) -> float:
    """Beam-specimen interaction parameter ``sigma`` in radians/(V*pm).

    ``sigma = 2*pi*gamma*m0*e*lambda / h^2`` expressed through measurable
    quantities as ``sigma = 2*pi / (lambda * E) * (m0c^2 + E)/(2*m0c^2 + E)``
    (Kirkland Eq. 5.6).  Used to convert a projected potential (V*pm) into
    a transmission-function phase.
    """
    lam = electron_wavelength_pm(energy_ev)
    m0c2 = ELECTRON_REST_ENERGY_EV
    return (
        (2.0 * math.pi)
        / (lam * energy_ev)
        * (m0c2 + energy_ev)
        / (2.0 * m0c2 + energy_ev)
    )
