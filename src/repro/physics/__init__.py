"""Electron-ptychography physics substrate.

Everything the reconstruction algorithms need from the physical world:

* :mod:`repro.physics.constants` — relativistic electron optics constants.
* :mod:`repro.physics.probe` — focused probe formation (aperture, defocus).
* :mod:`repro.physics.propagation` — Fresnel free-space propagation.
* :mod:`repro.physics.potential` — synthetic PbTiO3 specimen generator.
* :mod:`repro.physics.scan` — raster scan patterns with overlap control.
* :mod:`repro.physics.multislice` — the forward operator ``G`` of Eq. (1)
  and its adjoint (the analytic image gradient).
* :mod:`repro.physics.dataset` — end-to-end diffraction dataset simulation.

All lengths are in **picometers** (the paper quotes 10x10x125 pm^3 voxels),
all angles in radians, all energies in electron-volts.
"""

from repro.physics.constants import (
    electron_wavelength_pm,
    interaction_parameter,
    relativistic_mass_factor,
)
from repro.physics.probe import Probe, ProbeSpec, make_probe
from repro.physics.propagation import FresnelPropagator
from repro.physics.potential import SpecimenSpec, make_specimen, pbtio3_unit_cell
from repro.physics.scan import RasterScan, ScanSpec, probe_window
from repro.physics.multislice import MultisliceModel, probe_gradient
from repro.physics.dataset import (
    DatasetSpec,
    PtychoDataset,
    simulate_dataset,
    small_pbtio3_spec,
    large_pbtio3_spec,
    scaled_pbtio3_spec,
)

__all__ = [
    "electron_wavelength_pm",
    "interaction_parameter",
    "relativistic_mass_factor",
    "Probe",
    "ProbeSpec",
    "make_probe",
    "FresnelPropagator",
    "SpecimenSpec",
    "make_specimen",
    "pbtio3_unit_cell",
    "RasterScan",
    "ScanSpec",
    "probe_window",
    "MultisliceModel",
    "probe_gradient",
    "DatasetSpec",
    "PtychoDataset",
    "simulate_dataset",
    "small_pbtio3_spec",
    "large_pbtio3_spec",
    "scaled_pbtio3_spec",
]
