"""The compute-backend seam: array/FFT execution + precision policy.

Every hot-path transform in the library dispatches through an
:class:`ArrayBackend`.  Backends register under a short name with
:func:`register_backend` (mirroring the solver registry of
:mod:`repro.api.registry`); the stack resolves names through this module,
so swapping ``numpy`` for the threaded scipy backend — or a GPU backend —
requires no edits to any physics or engine code::

    from repro.backend import register_backend, ArrayBackend

    @register_backend("mylib")
    class MyBackend(ArrayBackend):
        name = "mylib"
        def fft2(self, a, norm="ortho"): ...
        def ifft2(self, a, norm="ortho"): ...

Two orthogonal knobs travel together through the stack:

* **backend** — *who* executes the transforms (``"numpy"``,
  ``"threaded"``, ``"cupy"`` when installed, or a third-party
  registration);
* **precision** — *at what width* (:class:`PrecisionPolicy`):
  ``complex128`` (the bit-exact reference) or ``complex64`` (half the
  memory and roughly twice the FFT throughput — the paper's memory
  model assumes this storage width).

The **dtype-preservation contract** every backend honours: single-width
input (``complex64``/``float32``) transforms to ``complex64`` output;
everything else to ``complex128``.  ``np.fft`` alone silently upcasts
``complex64`` to ``complex128``, which defeated the memory model before
this subsystem existed.

Ambient defaults resolve in order: explicit argument → a process-wide
default *explicitly set* in code (:func:`set_default_backend` /
:func:`use_backend` — a with-block is more specific than the
environment) → the ``REPRO_BACKEND`` / ``REPRO_DTYPE`` environment
variables (how CI runs the whole tier-1 suite on the threaded backend)
→ the built-in ``numpy`` / ``complex128`` reference.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Type, Union

import numpy as np

__all__ = [
    "ArrayBackend",
    "PrecisionPolicy",
    "DOUBLE",
    "SINGLE",
    "UnknownBackendError",
    "BackendUnavailableError",
    "register_backend",
    "unregister_backend",
    "acquire_backend",
    "release_backend",
    "backend_refcount",
    "shutdown_backends",
    "backend_names",
    "available_backend_names",
    "get_backend",
    "resolve_backend",
    "resolve_precision",
    "set_default_backend",
    "get_default_backend",
    "default_backend_name",
    "default_dtype_name",
    "use_backend",
    "ENV_BACKEND",
    "ENV_DTYPE",
    "DEFAULT_BACKEND_NAME",
    "DEFAULT_DTYPE_NAME",
]

#: Environment variables consulted when no explicit backend/dtype is given.
ENV_BACKEND = "REPRO_BACKEND"
ENV_DTYPE = "REPRO_DTYPE"

#: Process-wide fallbacks (the bit-exact reference configuration).
DEFAULT_BACKEND_NAME = "numpy"
DEFAULT_DTYPE_NAME = "complex128"


class UnknownBackendError(ValueError):
    """Raised for a backend name not in the registry; the message always
    lists what *is* registered."""


class BackendUnavailableError(RuntimeError):
    """Raised when a registered backend cannot run here (missing optional
    dependency, no GPU, ...)."""


# ----------------------------------------------------------------------
# Precision policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrecisionPolicy:
    """Complex/real dtype pair all compute arrays of a run share.

    ``complex128`` is the default (bit-identical to the historical
    hard-wired behaviour); ``complex64`` is the fast path matching the
    paper's storage model (Table I accounts the volume at 8 bytes per
    voxel).  The policy travels with the backend through every layer so
    allocation, transforms and byte accounting agree on one width.
    """

    name: str
    complex_dtype: np.dtype
    real_dtype: np.dtype

    @property
    def complex_itemsize(self) -> int:
        """Bytes per complex element (16 or 8)."""
        return self.complex_dtype.itemsize

    @property
    def real_itemsize(self) -> int:
        """Bytes per real element (8 or 4)."""
        return self.real_dtype.itemsize

    @classmethod
    def from_name(
        cls, spec: Union[str, "PrecisionPolicy", None]
    ) -> "PrecisionPolicy":
        """Resolve ``"complex128"``/``"complex64"`` (or a policy
        passthrough, or ``None`` for the ambient default)."""
        if spec is None:
            return cls.from_name(default_dtype_name())
        if isinstance(spec, PrecisionPolicy):
            return spec
        try:
            return _POLICIES[str(spec)]
        except KeyError:
            raise ValueError(
                f"unknown precision {spec!r}; choose from "
                f"{sorted(_POLICIES)}"
            ) from None


#: The bit-exact reference precision.
DOUBLE = PrecisionPolicy(
    "complex128", np.dtype(np.complex128), np.dtype(np.float64)
)
#: The memory-lean fast path (half the bytes, ~2x the FFT throughput).
SINGLE = PrecisionPolicy(
    "complex64", np.dtype(np.complex64), np.dtype(np.float32)
)

_POLICIES: Dict[str, PrecisionPolicy] = {p.name: p for p in (DOUBLE, SINGLE)}


def resolve_precision(
    spec: Union[str, PrecisionPolicy, None] = None
) -> PrecisionPolicy:
    """Explicit spec → policy; ``None`` → ``REPRO_DTYPE`` env var or the
    ``complex128`` default."""
    return PrecisionPolicy.from_name(spec)


def default_dtype_name() -> str:
    """The ambient precision name (``REPRO_DTYPE`` or ``complex128``)."""
    return os.environ.get(ENV_DTYPE, DEFAULT_DTYPE_NAME)


# ----------------------------------------------------------------------
# Backend protocol
# ----------------------------------------------------------------------
class ArrayBackend(ABC):
    """One array + FFT execution strategy (see module docstring).

    Subclasses implement :meth:`fft2`/:meth:`ifft2` over the *last two
    axes* and must honour the dtype-preservation contract; the centered
    (``fftshift``) and unitary (``norm="ortho"``) conventions stay in
    :mod:`repro.utils.fftutils`, which dispatches here.
    """

    #: Registry name (set by :func:`register_backend`).
    name: str = ""

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment
        (optional dependencies importable, device present, ...)."""
        return True

    @property
    def xp(self):
        """The array namespace the backend computes in (``numpy`` for
        every CPU backend; ``cupy`` on the GPU)."""
        return np

    # -- transforms ----------------------------------------------------
    @abstractmethod
    def fft2(self, a: np.ndarray, norm: str = "ortho") -> np.ndarray:
        """2-D FFT over the last two axes, dtype-preserving."""

    @abstractmethod
    def ifft2(self, a: np.ndarray, norm: str = "ortho") -> np.ndarray:
        """2-D inverse FFT over the last two axes, dtype-preserving."""

    # -- helpers -------------------------------------------------------
    @staticmethod
    def complex_dtype_of(a: np.ndarray) -> np.dtype:
        """The output dtype the preservation contract demands for ``a``:
        single-width input → ``complex64``, everything else →
        ``complex128``."""
        if a.dtype in (np.complex64, np.float32, np.float16):
            return np.dtype(np.complex64)
        return np.dtype(np.complex128)

    def plan_stats(self) -> Dict[str, int]:
        """Plan-cache statistics (zeroes for planless backends)."""
        return {"plans": 0, "hits": 0}

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release held resources (worker pools, plan caches, device
        handles).  Idempotent; the base implementation is a no-op —
        stateless backends (e.g. ``numpy``) keep transforming after
        close, while backends that *do* hold state should also refuse
        further transforms once closed (``threaded`` does).

        Long-lived services that construct backends directly should
        close them (or use the backend as a context manager); instances
        cached by the registry are closed by
        :func:`release_backend`/:func:`shutdown_backends` and whenever
        their registration is removed or overwritten.
        """
        return

    def __enter__(self) -> "ArrayBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
#: Outstanding :func:`acquire_backend` leases per cached instance.  A
#: :func:`release_backend` call only closes the instance when the last
#: lease is returned, so one service job finishing cannot tear down the
#: plan cache another concurrently-running job is transforming through.
_REFCOUNTS: Dict[str, int] = {}
#: Guards every mutation of the registry/instance/refcount tables.
#: Reentrant: ``acquire_backend`` calls ``get_backend`` under the lock.
_LOCK = threading.RLock()
#: One-slot mutable cell holding the in-code default — a name *or a
#: configured instance* (``use_backend(ThreadedFFTBackend(workers=2))``
#: must honour the caller's instance, not just its registry name).
#: ``None`` = never explicitly set, so ambient resolution falls through
#: to the environment.
_DEFAULT_SPEC: List[Union[str, ArrayBackend, None]] = [None]


def register_backend(
    name: str, *, overwrite: bool = False
) -> Callable[[Type[ArrayBackend]], Type[ArrayBackend]]:
    """Class decorator registering a backend under ``name``.

    Mirrors :func:`repro.api.register_solver`: re-registering an existing
    name raises unless ``overwrite=True``; the class gains a ``name``
    attribute set to the registration name.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("backend name must be a non-empty string")

    def decorator(cls: Type[ArrayBackend]) -> Type[ArrayBackend]:
        for method in ("fft2", "ifft2"):
            if not callable(getattr(cls, method, None)):
                raise TypeError(
                    f"cannot register {cls.__name__!r}: backends must "
                    f"define {method}(a, norm=...)"
                )
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"backend {name!r} is already registered "
                f"(by {_REGISTRY[name].__name__}); pass overwrite=True "
                "to replace"
            )
        cls.name = name
        with _LOCK:
            _REGISTRY[name] = cls
            stale = _evict_locked(name)
        if stale is not None:
            stale.close()
        return cls

    return decorator


def _evict_locked(name: str) -> Optional[ArrayBackend]:
    """Drop the cached instance (and any leases) under ``name``; the
    caller must hold ``_LOCK`` and must ``close()`` the returned
    instance *after* releasing it — ``close()`` can block on worker-pool
    shutdown, and running it under the registry lock would stall every
    concurrent backend resolution (see the ``lock-blocking`` rule of
    :mod:`repro.analysis`)."""
    _REFCOUNTS.pop(name, None)
    return _INSTANCES.pop(name, None)


def _close_instance(name: str) -> None:
    """Evict and close the cached instance under ``name`` (if any) —
    registry-held backends must not leak worker pools or plan caches
    when their registration goes away.  Any outstanding leases are
    voided (re-registration/teardown is a force-close).  Must be called
    *without* holding ``_LOCK``: the close runs outside it."""
    with _LOCK:
        instance = _evict_locked(name)
    if instance is not None:
        instance.close()


def unregister_backend(name: str) -> None:
    """Remove a registration (mainly for tests and plugin teardown);
    the cached instance, if any, is closed."""
    with _LOCK:
        if name not in _REGISTRY:
            raise UnknownBackendError(_unknown_message(name))
        del _REGISTRY[name]
        stale = _evict_locked(name)
    if stale is not None:
        stale.close()


def acquire_backend(spec: Union[str, ArrayBackend]) -> ArrayBackend:
    """Resolve ``spec`` like :func:`get_backend` and take a lease on the
    cached instance.

    Concurrent holders (e.g. service workers running jobs on the same
    backend) each acquire their own lease; :func:`release_backend` only
    closes the shared instance when the last lease is returned.  Caller
    contract::

        backend = acquire_backend("threaded")
        try:
            ...  # run a job through it
        finally:
            release_backend(backend.name)

    An instance passed directly (not registry-cached) is returned as-is
    without a lease — its lifecycle belongs to whoever constructed it.
    """
    with _LOCK:
        backend = get_backend(spec)
        name = backend.name
        if _INSTANCES.get(name) is backend:
            _REFCOUNTS[name] = _REFCOUNTS.get(name, 0) + 1
        return backend


def release_backend(name: str) -> None:
    """Return a lease on (or force-recycle) the cached instance of
    ``name``; the registration itself stays.

    With outstanding :func:`acquire_backend` leases, the instance is
    closed and evicted only when the *last* lease is returned — earlier
    calls just decrement the count, so one job's completion cannot close
    a plan cache another job is mid-transform on.  Without leases (the
    pre-service calling convention), the instance is closed and evicted
    immediately; the next :func:`get_backend` constructs a fresh one.
    """
    with _LOCK:
        if name not in _REGISTRY:
            raise UnknownBackendError(_unknown_message(name))
        count = _REFCOUNTS.get(name, 0)
        if count > 1:
            _REFCOUNTS[name] = count - 1
            return
        instance = _evict_locked(name)
    if instance is not None:
        instance.close()


def backend_refcount(name: str = None) -> Union[int, Dict[str, int]]:
    """Outstanding leases for ``name`` (0 if none), or — with no
    argument — a snapshot of every non-zero count.  The service leak
    check asserts this is empty after its worker pool drains."""
    with _LOCK:
        if name is not None:
            return _REFCOUNTS.get(name, 0)
        return {n: c for n, c in _REFCOUNTS.items() if c > 0}


def shutdown_backends() -> None:
    """Close and evict every cached backend instance (process teardown
    hook for services embedding the library)."""
    with _LOCK:
        names = list(_INSTANCES)
    for name in names:
        _close_instance(name)


def backend_names() -> List[str]:
    """Sorted names of all registered backends (available or not)."""
    return sorted(_REGISTRY)


def available_backend_names() -> List[str]:
    """Sorted names of the backends that can actually run here."""
    return sorted(n for n, cls in _REGISTRY.items() if cls.available())


def get_backend(spec: Union[str, ArrayBackend]) -> ArrayBackend:
    """Resolve a name (or instance passthrough) to a backend instance.

    Default-constructed instances are cached per name, so repeated
    lookups share plan caches and worker pools.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    name = str(spec)
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(_unknown_message(name)) from None
    if not cls.available():
        raise BackendUnavailableError(
            f"backend {name!r} is registered but not available in this "
            f"environment (available: {', '.join(available_backend_names()) or '(none)'})"
        )
    with _LOCK:
        cached = _INSTANCES.get(name)
        if cached is None or getattr(cached, "closed", False):
            # A user-closed instance must not poison later resolutions
            # of the name — rebuild instead of handing out a dead
            # backend (stale leases on the dead instance are voided).
            _REFCOUNTS.pop(name, None)
            _INSTANCES[name] = cls()
        return _INSTANCES[name]


def resolve_backend(
    spec: Union[str, ArrayBackend, None] = None
) -> ArrayBackend:
    """Explicit spec → backend; ``None`` → the in-code default
    (:func:`set_default_backend` / :func:`use_backend`, instances
    honoured as-is), else ``REPRO_BACKEND``, else ``numpy``."""
    if spec is None:
        spec = _DEFAULT_SPEC[0]
    if spec is None:
        spec = os.environ.get(ENV_BACKEND, DEFAULT_BACKEND_NAME)
    return get_backend(spec)


def default_backend_name() -> str:
    """The registry name ambient resolution currently lands on."""
    return resolve_backend(None).name


def set_default_backend(spec: Union[str, ArrayBackend]) -> None:
    """Change the process-wide default backend (validated immediately).
    A configured *instance* is kept as the default itself — its worker
    pool and plan cache serve every ambient resolution."""
    get_backend(spec)  # validate registration/availability now
    _DEFAULT_SPEC[0] = spec


def get_default_backend() -> ArrayBackend:
    """The backend ambient resolution currently lands on."""
    return resolve_backend(None)


@contextmanager
def use_backend(spec: Union[str, ArrayBackend]) -> Iterator[ArrayBackend]:
    """Temporarily make ``spec`` the process-wide default backend::

        with use_backend("threaded"):
            result = repro.reconstruct(dataset, config)

    Passing a configured instance (e.g. ``ThreadedFFTBackend(workers=2)``)
    makes *that instance* serve every ambient resolution in the scope.
    """
    backend = get_backend(spec)
    previous = _DEFAULT_SPEC[0]
    _DEFAULT_SPEC[0] = backend
    try:
        yield backend
    finally:
        _DEFAULT_SPEC[0] = previous


def _unknown_message(name: str) -> str:
    registered = ", ".join(backend_names()) or "(none)"
    return f"unknown backend {name!r}; registered backends: {registered}"
