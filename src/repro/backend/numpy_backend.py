"""The ``numpy`` reference backend.

Bit-for-bit identical to calling ``np.fft`` directly at ``complex128``
(the library's historical behaviour — every pre-backend result is
reproduced exactly), with one deliberate repair: single-precision input
comes back as ``complex64`` instead of being silently upcast.  ``np.fft``
has no single-precision kernels, so the transform still *computes* in
double here; the threaded scipy backend computes natively in single
precision and is the one to use when chasing the complex64 speedup.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend, register_backend

__all__ = ["NumpyBackend"]


@register_backend("numpy")
class NumpyBackend(ArrayBackend):
    """Serial ``np.fft`` execution (see module docstring)."""

    def fft2(self, a: np.ndarray, norm: str = "ortho") -> np.ndarray:
        return self._match(np.fft.fft2(a, norm=norm), a)

    def ifft2(self, a: np.ndarray, norm: str = "ortho") -> np.ndarray:
        return self._match(np.fft.ifft2(a, norm=norm), a)

    @staticmethod
    def _match(out: np.ndarray, a: np.ndarray) -> np.ndarray:
        """Enforce the dtype-preservation contract.  The complex128 path
        returns ``np.fft``'s array untouched (bit-identity!); only
        single-width inputs pay a downcast."""
        target = ArrayBackend.complex_dtype_of(a)
        if out.dtype == target:
            return out
        return out.astype(target)
