"""The optional ``cupy`` backend (cuFFT execution).

Import-guarded: the class registers unconditionally so ``--backend
cupy`` is always a *recognized* name, but :meth:`CupyBackend.available`
answers honestly (cupy importable *and* a CUDA device present) and
:func:`repro.backend.get_backend` raises
:class:`~repro.backend.BackendUnavailableError` with the available
alternatives when it is not.  The test suite auto-skips its cupy cases
the same way.

Transparency over residency: ``fft2``/``ifft2`` accept NumPy *or* CuPy
arrays and return the same kind they were given (NumPy in → the result
is copied back with ``asnumpy``).  That keeps the whole CPU-resident
stack runnable on cuFFT unchanged — correctness-first; keeping arrays
device-resident across the multislice sweep is the follow-on
optimization and wants the engine's buffers allocated via ``xp``.

cuFFT computes natively in single precision, so the
``complex64`` fast path holds the dtype-preservation contract for free
(this mirrors how libtike-cufft and the multi-GPU ptychography codes of
Yu et al. run these exact kernels).
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend, register_backend

__all__ = ["CupyBackend"]

try:  # pragma: no cover - exercised only on GPU machines
    import cupy as _cupy
except Exception:  # ImportError, or a broken CUDA install
    _cupy = None


def _device_present() -> bool:
    if _cupy is None:
        return False
    try:  # pragma: no cover - exercised only on GPU machines
        return int(_cupy.cuda.runtime.getDeviceCount()) > 0
    except Exception:
        return False


@register_backend("cupy")
class CupyBackend(ArrayBackend):
    """cuFFT-backed transforms (see module docstring)."""

    @classmethod
    def available(cls) -> bool:
        return _device_present()

    @property
    def xp(self):  # pragma: no cover - exercised only on GPU machines
        return _cupy

    # ------------------------------------------------------------------
    def fft2(self, a, norm: str = "ortho"):  # pragma: no cover - GPU only
        return self._run(_cupy.fft.fft2, a, norm)

    def ifft2(self, a, norm: str = "ortho"):  # pragma: no cover - GPU only
        return self._run(_cupy.fft.ifft2, a, norm)

    @staticmethod
    def _run(transform, a, norm):  # pragma: no cover - GPU only
        host_input = not isinstance(a, _cupy.ndarray)
        out = transform(_cupy.asarray(a), norm=norm, axes=(-2, -1))
        target = ArrayBackend.complex_dtype_of(np.asarray(a) if host_input else a)
        if out.dtype != target:
            out = out.astype(target)
        return _cupy.asnumpy(out) if host_input else out
