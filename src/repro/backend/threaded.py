"""The ``threaded`` backend: ``scipy.fft`` with a worker pool and plans.

``scipy.fft``'s pocketfft gives three things ``np.fft`` cannot:

* **native single precision** — ``complex64`` input transforms in
  ``complex64`` (half the memory traffic, roughly half the flop width),
  which is the whole point of the :class:`~repro.backend.PrecisionPolicy`
  fast path;
* **a worker pool** — batched probe-window transforms (the
  ``(n_slices, window, window)`` stacks of the multislice sweep) split
  across ``workers`` threads;
* **measurably faster kernels** even serially (vectorized pocketfft).

scipy's pocketfft caches twiddle factors internally per shape; the
:class:`FFTPlan` layer on top pins the *worker-count decision* per
``(batch, shape, dtype)`` signature so the heuristic runs once, and
counts reuse so the benchmark harness can report plan-cache hit rates.
The plan cache is a bounded LRU (``max_plans``) so services that sweep
many transform shapes cannot grow it without limit, and the backend
supports explicit shutdown: ``close()`` (or a ``with`` block) drops the
plans and refuses further transforms — the registry closes its cached
instance on eviction, so long-lived processes do not accumulate stale
execution state across backend reconfigurations.

Numerics: pocketfft's vectorized kernels reorder floating-point
operations relative to ``np.fft``, so results agree with the numpy
backend to machine epsilon but are **not bit-identical** — the parity
suite asserts eps-level agreement at ``complex128`` and keeps strict
bit-identity guarantees on the numpy backend only.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.backend.base import ArrayBackend, register_backend

__all__ = ["ThreadedFFTBackend", "FFTPlan"]

#: Transforms smaller than this many elements are not worth a thread
#: hand-off; pocketfft runs them on the calling thread.
_SERIAL_CUTOFF = 1 << 15


def _scipy_fft():
    """Import ``scipy.fft`` lazily so the library (and its import-time
    registration) works on scipy-less installs."""
    import scipy.fft

    return scipy.fft


@dataclass
class FFTPlan:
    """A cached execution decision for one transform signature."""

    shape: Tuple[int, ...]
    dtype: np.dtype
    workers: int
    hits: int = field(default=0)


@register_backend("threaded")
class ThreadedFFTBackend(ArrayBackend):
    """Planned, multi-worker ``scipy.fft`` execution.

    Parameters
    ----------
    workers:
        Worker-pool width for batched transforms; defaults to the CPU
        count (capped at 8 — pocketfft's batch parallelism stops paying
        beyond that for probe-window sizes).
    max_plans:
        Plan-cache bound; least-recently-used plans are evicted beyond
        it.  A reconstruction touches a handful of transform signatures,
        so the default never evicts in practice — the bound exists so a
        long-lived service sweeping many shapes cannot leak.
    """

    def __init__(
        self, workers: Optional[int] = None, max_plans: int = 128
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        if max_plans <= 0:
            raise ValueError("max_plans must be positive")
        self.workers = (
            workers
            if workers is not None
            else max(1, min(os.cpu_count() or 1, 8))
        )
        self.max_plans = max_plans
        self._plans: "OrderedDict[Tuple[Tuple[int, ...], np.dtype], FFTPlan]" = (
            OrderedDict()
        )
        self._hits = 0
        self._evictions = 0
        self._closed = False
        # Concurrent service workers share one registry-cached instance;
        # the OrderedDict mutations (insert, move_to_end, LRU pop) are
        # not atomic, so plan lookup/creation and close serialize here.
        # The transforms themselves run outside the lock (scipy releases
        # the GIL), so only the bookkeeping is single-file.
        self._lock = threading.Lock()

    @classmethod
    def available(cls) -> bool:
        try:
            _scipy_fft()
        except ImportError:  # pragma: no cover - scipy is present in CI
            return False
        return True

    # ------------------------------------------------------------------
    def fft2(self, a: np.ndarray, norm: str = "ortho") -> np.ndarray:
        plan = self._plan_for(a)
        return _scipy_fft().fft2(
            a, norm=norm, axes=(-2, -1), workers=plan.workers
        )

    def ifft2(self, a: np.ndarray, norm: str = "ortho") -> np.ndarray:
        plan = self._plan_for(a)
        return _scipy_fft().ifft2(
            a, norm=norm, axes=(-2, -1), workers=plan.workers
        )

    # ------------------------------------------------------------------
    def _plan_for(self, a: np.ndarray) -> FFTPlan:
        """Fetch (or create) the plan for ``a``'s transform signature.

        scipy preserves single precision natively, so the plan's only
        job is the worker decision: tiny transforms stay serial (thread
        hand-off costs more than the butterfly), batches use the pool.
        Lookups refresh LRU order; creation beyond ``max_plans`` evicts
        the least-recently-used signature.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "ThreadedFFTBackend is closed; construct a new instance "
                    "(or let the registry do it via get_backend)"
                )
            key = (a.shape, a.dtype)
            plan = self._plans.get(key)
            if plan is None:
                workers = 1 if a.size < _SERIAL_CUTOFF else self.workers
                plan = FFTPlan(shape=a.shape, dtype=a.dtype, workers=workers)
                self._plans[key] = plan
                if len(self._plans) > self.max_plans:
                    self._plans.popitem(last=False)
                    self._evictions += 1
            else:
                self._plans.move_to_end(key)
                plan.hits += 1
                self._hits += 1
            return plan

    def plan_stats(self) -> dict:
        """Distinct live plans, total cache hits, and LRU evictions."""
        with self._lock:
            return {
                "plans": len(self._plans),
                "hits": self._hits,
                "evictions": self._evictions,
            }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the plan cache and refuse further transforms.

        scipy's per-call worker threads are joined inside each
        transform, so the pool itself holds nothing between calls; what
        a long-lived service leaks by re-constructing backends is plan
        state — this releases it deterministically.  Idempotent, and
        serialized against in-flight plan lookups so a closing job never
        clears the cache mid-mutation.
        """
        with self._lock:
            self._plans.clear()
            self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadedFFTBackend(workers={self.workers})"
