"""The ``threaded`` backend: ``scipy.fft`` with a worker pool and plans.

``scipy.fft``'s pocketfft gives three things ``np.fft`` cannot:

* **native single precision** — ``complex64`` input transforms in
  ``complex64`` (half the memory traffic, roughly half the flop width),
  which is the whole point of the :class:`~repro.backend.PrecisionPolicy`
  fast path;
* **a worker pool** — batched probe-window transforms (the
  ``(n_slices, window, window)`` stacks of the multislice sweep) split
  across ``workers`` threads;
* **measurably faster kernels** even serially (vectorized pocketfft).

scipy's pocketfft caches twiddle factors internally per shape; the
:class:`FFTPlan` layer on top pins the *worker-count decision* per
``(batch, shape, dtype)`` signature so the heuristic runs once, and
counts reuse so the benchmark harness can report plan-cache hit rates.

Numerics: pocketfft's vectorized kernels reorder floating-point
operations relative to ``np.fft``, so results agree with the numpy
backend to machine epsilon but are **not bit-identical** — the parity
suite asserts eps-level agreement at ``complex128`` and keeps strict
bit-identity guarantees on the numpy backend only.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.backend.base import ArrayBackend, register_backend

__all__ = ["ThreadedFFTBackend", "FFTPlan"]

#: Transforms smaller than this many elements are not worth a thread
#: hand-off; pocketfft runs them on the calling thread.
_SERIAL_CUTOFF = 1 << 15


def _scipy_fft():
    """Import ``scipy.fft`` lazily so the library (and its import-time
    registration) works on scipy-less installs."""
    import scipy.fft

    return scipy.fft


@dataclass
class FFTPlan:
    """A cached execution decision for one transform signature."""

    shape: Tuple[int, ...]
    dtype: np.dtype
    workers: int
    hits: int = field(default=0)


@register_backend("threaded")
class ThreadedFFTBackend(ArrayBackend):
    """Planned, multi-worker ``scipy.fft`` execution.

    Parameters
    ----------
    workers:
        Worker-pool width for batched transforms; defaults to the CPU
        count (capped at 8 — pocketfft's batch parallelism stops paying
        beyond that for probe-window sizes).
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = (
            workers
            if workers is not None
            else max(1, min(os.cpu_count() or 1, 8))
        )
        self._plans: Dict[Tuple[Tuple[int, ...], np.dtype], FFTPlan] = {}
        self._hits = 0

    @classmethod
    def available(cls) -> bool:
        try:
            _scipy_fft()
        except ImportError:  # pragma: no cover - scipy is present in CI
            return False
        return True

    # ------------------------------------------------------------------
    def fft2(self, a: np.ndarray, norm: str = "ortho") -> np.ndarray:
        plan = self._plan_for(a)
        return _scipy_fft().fft2(
            a, norm=norm, axes=(-2, -1), workers=plan.workers
        )

    def ifft2(self, a: np.ndarray, norm: str = "ortho") -> np.ndarray:
        plan = self._plan_for(a)
        return _scipy_fft().ifft2(
            a, norm=norm, axes=(-2, -1), workers=plan.workers
        )

    # ------------------------------------------------------------------
    def _plan_for(self, a: np.ndarray) -> FFTPlan:
        """Fetch (or create) the plan for ``a``'s transform signature.

        scipy preserves single precision natively, so the plan's only
        job is the worker decision: tiny transforms stay serial (thread
        hand-off costs more than the butterfly), batches use the pool.
        """
        key = (a.shape, a.dtype)
        plan = self._plans.get(key)
        if plan is None:
            workers = 1 if a.size < _SERIAL_CUTOFF else self.workers
            plan = FFTPlan(shape=a.shape, dtype=a.dtype, workers=workers)
            self._plans[key] = plan
        else:
            plan.hits += 1
            self._hits += 1
        return plan

    def plan_stats(self) -> Dict[str, int]:
        """Distinct plans created and total cache hits so far."""
        return {"plans": len(self._plans), "hits": self._hits}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadedFFTBackend(workers={self.workers})"
