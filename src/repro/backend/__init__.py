"""repro.backend — pluggable array/FFT execution + precision policy.

The pieces (one module each):

* :class:`ArrayBackend` / :func:`register_backend` — the execution
  protocol and its registry (``"numpy"``, ``"threaded"``, ``"cupy"``
  ship registered; third parties add their own the same way solvers
  do).
* :class:`PrecisionPolicy` — the complex/real dtype pair a run computes
  in (``complex128`` reference, ``complex64`` fast path), with
  dtype-preserving transforms on every backend.
* :func:`resolve_backend` / :func:`resolve_precision` — ambient
  resolution: explicit argument → ``REPRO_BACKEND``/``REPRO_DTYPE``
  environment → process default.

Minimal use::

    from repro.backend import use_backend

    with use_backend("threaded"):
        result = repro.reconstruct(dataset, config)   # threaded FFTs

or declaratively, through the config/CLI layer::

    ReconstructionConfig("gd", {...}, backend="threaded", dtype="complex64")
    repro-ptycho reconstruct --backend threaded --dtype complex64 ...
"""

from repro.backend.base import (
    DEFAULT_BACKEND_NAME,
    DEFAULT_DTYPE_NAME,
    DOUBLE,
    ENV_BACKEND,
    ENV_DTYPE,
    SINGLE,
    ArrayBackend,
    BackendUnavailableError,
    PrecisionPolicy,
    UnknownBackendError,
    acquire_backend,
    available_backend_names,
    backend_names,
    backend_refcount,
    default_backend_name,
    default_dtype_name,
    get_backend,
    get_default_backend,
    register_backend,
    release_backend,
    resolve_backend,
    resolve_precision,
    set_default_backend,
    shutdown_backends,
    unregister_backend,
    use_backend,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.threaded import FFTPlan, ThreadedFFTBackend
from repro.backend.cupy_backend import CupyBackend

__all__ = [
    "ArrayBackend",
    "PrecisionPolicy",
    "DOUBLE",
    "SINGLE",
    "UnknownBackendError",
    "BackendUnavailableError",
    "register_backend",
    "unregister_backend",
    "acquire_backend",
    "release_backend",
    "backend_refcount",
    "shutdown_backends",
    "backend_names",
    "available_backend_names",
    "get_backend",
    "resolve_backend",
    "resolve_precision",
    "set_default_backend",
    "get_default_backend",
    "default_backend_name",
    "default_dtype_name",
    "use_backend",
    "ENV_BACKEND",
    "ENV_DTYPE",
    "DEFAULT_BACKEND_NAME",
    "DEFAULT_DTYPE_NAME",
    "NumpyBackend",
    "ThreadedFFTBackend",
    "FFTPlan",
    "CupyBackend",
]
