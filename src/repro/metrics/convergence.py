"""Cost-history summaries for convergence studies (paper Fig. 9)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["relative_decrease", "iterations_to_fraction", "auc_cost"]


def _check_history(history: Sequence[float]) -> np.ndarray:
    arr = np.asarray(history, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("history must be a non-empty 1-D sequence")
    return arr


def relative_decrease(history: Sequence[float]) -> float:
    """``final / initial`` cost ratio (lower = better convergence)."""
    arr = _check_history(history)
    if arr[0] == 0:
        return 0.0 if arr[-1] == 0 else float("inf")
    return float(arr[-1] / arr[0])


def iterations_to_fraction(history: Sequence[float], fraction: float) -> int:
    """First iteration index whose cost drops to ``fraction * initial``;
    ``len(history)`` when never reached.  The Fig. 9 comparison metric
    ("which communication frequency reaches a target residual first")."""
    if not (0.0 < fraction <= 1.0):
        raise ValueError("fraction must be in (0, 1]")
    arr = _check_history(history)
    target = arr[0] * fraction
    hits = np.flatnonzero(arr <= target)
    return int(hits[0]) if hits.size else len(arr)


def auc_cost(history: Sequence[float]) -> float:
    """Area under the (normalized) cost curve — a single-number
    convergence-speed summary robust to final-value ties."""
    arr = _check_history(history)
    if arr[0] == 0:
        return 0.0
    return float(np.trapezoid(arr / arr[0]))
