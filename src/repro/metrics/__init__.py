"""Evaluation metrics for reconstructions and scaling studies.

* :mod:`repro.metrics.seam` — the tile-border seam-artifact metric behind
  the Fig. 8 comparison.
* :mod:`repro.metrics.image_quality` — RMSE / PSNR / phase-aligned complex
  correlation against ground truth.
* :mod:`repro.metrics.convergence` — cost-history summaries (Fig. 9).
* :mod:`repro.metrics.scaling` — strong-scaling efficiency and speedup
  (Tables II/III, Fig. 7a).
"""

from repro.metrics.seam import seam_metric, boundary_profile
from repro.metrics.image_quality import (
    rmse,
    psnr,
    complex_correlation,
    phase_rmse,
)
from repro.metrics.convergence import (
    relative_decrease,
    iterations_to_fraction,
    auc_cost,
)
from repro.metrics.scaling import (
    speedups,
    strong_scaling_efficiency,
    is_superlinear,
)
from repro.metrics.frc import (
    FrcCurve,
    fourier_ring_correlation,
    resolution_cutoff,
)

__all__ = [
    "seam_metric",
    "boundary_profile",
    "rmse",
    "psnr",
    "complex_correlation",
    "phase_rmse",
    "relative_decrease",
    "iterations_to_fraction",
    "auc_cost",
    "speedups",
    "strong_scaling_efficiency",
    "is_superlinear",
    "FrcCurve",
    "fourier_ring_correlation",
    "resolution_cutoff",
]
