"""Image-quality metrics against ground truth.

Ptychographic reconstructions have a global-phase gauge freedom (the data
only constrain ``|G(p, V)|``), so complex comparisons first align the
global phase before measuring error.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["rmse", "psnr", "complex_correlation", "phase_rmse", "align_phase"]


def _check_same_shape(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")


def align_phase(volume: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Multiply ``volume`` by the unit phasor that best aligns it to
    ``reference`` (least squares over all voxels)."""
    _check_same_shape(volume, reference)
    inner = np.vdot(volume, reference)
    if np.abs(inner) == 0:
        return volume
    return volume * (inner / np.abs(inner))


def rmse(volume: np.ndarray, reference: np.ndarray, align: bool = True) -> float:
    """Root-mean-square complex error, optionally phase-aligned."""
    _check_same_shape(volume, reference)
    v = align_phase(volume, reference) if align else volume
    return float(np.sqrt(np.mean(np.abs(v - reference) ** 2)))


def psnr(
    volume: np.ndarray,
    reference: np.ndarray,
    align: bool = True,
    peak: Optional[float] = None,
) -> float:
    """Peak signal-to-noise ratio in dB (peak defaults to
    ``max|reference|``)."""
    err = rmse(volume, reference, align=align)
    if peak is None:
        peak = float(np.max(np.abs(reference)))
    if err == 0:
        return float("inf")
    if peak <= 0:
        raise ValueError("peak must be positive")
    return 20.0 * np.log10(peak / err)


def complex_correlation(volume: np.ndarray, reference: np.ndarray) -> float:
    """Magnitude of the normalized complex inner product in [0, 1]
    (1 = identical up to a global phase and scale)."""
    _check_same_shape(volume, reference)
    denom = np.linalg.norm(volume.ravel()) * np.linalg.norm(reference.ravel())
    if denom == 0:
        return 0.0
    return float(np.abs(np.vdot(volume, reference)) / denom)


def phase_rmse(
    volume: np.ndarray, reference: np.ndarray, mask: Optional[np.ndarray] = None
) -> float:
    """RMS phase error in radians after global-phase alignment.

    ``mask`` restricts the comparison (e.g. to the well-scanned interior);
    defaults to all voxels.
    """
    _check_same_shape(volume, reference)
    v = align_phase(volume, reference)
    dphi = np.angle(v * np.conj(reference))
    if mask is not None:
        if mask.shape != dphi.shape:
            raise ValueError("mask shape mismatch")
        dphi = dphi[mask]
    return float(np.sqrt(np.mean(dphi**2)))
