"""Seam-artifact quantification (paper Fig. 8).

The Halo Voxel Exchange's copy-paste synchronization imprints
discontinuities exactly on the tile borders; the Gradient Decomposition's
accumulation smooths them away (paper Sec. VI-E).  We quantify this as the
ratio of the mean absolute finite difference *across* tile-boundary lines
to the mean absolute finite difference everywhere else:

``seam = mean(|dV| at boundaries) / mean(|dV| off boundaries)``

A seam-free reconstruction scores ~1 (boundaries look like any other
pixel row); visible seams score well above 1.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.decomposition import Decomposition

__all__ = ["seam_metric", "boundary_profile", "tile_boundary_lines"]


def tile_boundary_lines(
    decomp: Decomposition,
) -> Tuple[List[int], List[int]]:
    """Interior tile-boundary coordinates: (row lines, column lines).

    A "row line" at ``r`` means the seam sits between rows ``r-1`` and
    ``r`` (the first row of a non-topmost tile).
    """
    rows = sorted({t.core.r0 for t in decomp.tiles} - {decomp.bounds.r0})
    cols = sorted({t.core.c0 for t in decomp.tiles} - {decomp.bounds.c0})
    return list(rows), list(cols)


def _abs_diff_rows(volume: np.ndarray) -> np.ndarray:
    """|V[r] - V[r-1]| stacked over slices; shape (rows-1, cols)."""
    mag = np.abs(np.diff(volume, axis=-2))
    return mag.mean(axis=0) if mag.ndim == 3 else mag


def _abs_diff_cols(volume: np.ndarray) -> np.ndarray:
    mag = np.abs(np.diff(volume, axis=-1))
    return mag.mean(axis=0) if mag.ndim == 3 else mag


def seam_metric(
    volume: np.ndarray,
    decomp: Decomposition,
    margin: int = 0,
) -> float:
    """Boundary-to-background gradient ratio (see module docstring).

    Parameters
    ----------
    volume:
        ``(n_slices, rows, cols)`` or ``(rows, cols)`` reconstruction.
    decomp:
        Supplies the tile boundary positions.
    margin:
        Crop this many pixels from the image border before measuring
        (excludes un-scanned edges from the background estimate).
    """
    if volume.ndim == 2:
        volume = volume[None]
    rows_lines, cols_lines = tile_boundary_lines(decomp)
    dr = _abs_diff_rows(volume)
    dc = _abs_diff_cols(volume)

    h, w = volume.shape[-2], volume.shape[-1]
    row_mask = np.zeros(h - 1, dtype=bool)
    for r in rows_lines:
        if 1 <= r < h:
            row_mask[r - 1] = True
    col_mask = np.zeros(w - 1, dtype=bool)
    for c in cols_lines:
        if 1 <= c < w:
            col_mask[c - 1] = True

    sl_r = slice(margin, h - margin if margin else None)
    sl_c = slice(margin, w - margin if margin else None)
    dr = dr[:, sl_c]
    dc = dc[sl_r, :]
    row_mask_view = row_mask[
        slice(margin, (h - 1) - margin if margin else None)
    ]
    dr = dr[slice(margin, (h - 1) - margin if margin else None), :]
    col_mask_view = col_mask[
        slice(margin, (w - 1) - margin if margin else None)
    ]
    dc = dc[:, slice(margin, (w - 1) - margin if margin else None)]

    boundary_vals = []
    background_vals = []
    if dr.size:
        boundary_vals.append(dr[row_mask_view, :].ravel())
        background_vals.append(dr[~row_mask_view, :].ravel())
    if dc.size:
        boundary_vals.append(dc[:, col_mask_view].ravel())
        background_vals.append(dc[:, ~col_mask_view].ravel())

    boundary = np.concatenate(boundary_vals) if boundary_vals else np.array([])
    background = (
        np.concatenate(background_vals) if background_vals else np.array([])
    )
    if boundary.size == 0:
        return 1.0  # single tile: no interior boundaries, no seams
    bg = float(background.mean()) if background.size else 0.0
    if bg == 0.0:
        return float("inf") if float(boundary.mean()) > 0 else 1.0
    return float(boundary.mean()) / bg


def boundary_profile(
    volume: np.ndarray, decomp: Decomposition
) -> Tuple[np.ndarray, List[int]]:
    """Mean |row-difference| per row (averaged over slices and columns),
    plus the boundary row positions — the 1-D profile that makes seams
    visible in a report (spikes at the returned positions)."""
    if volume.ndim == 2:
        volume = volume[None]
    profile = _abs_diff_rows(volume).mean(axis=-1)
    rows_lines, _ = tile_boundary_lines(decomp)
    return profile, rows_lines
