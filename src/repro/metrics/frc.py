"""Fourier ring correlation (FRC) — the standard resolution metric in
ptychography (e.g. ref. [6] of the paper reports resolution via FRC-like
criteria).

``FRC(k) = |sum F1(k) conj(F2(k))| / sqrt(sum|F1|^2 * sum|F2|^2)`` over
rings of spatial frequency ``k``; the resolution is the frequency where
the curve drops below a threshold (the 1/2-bit or fixed-1/7 criterion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.fftutils import fft2c

__all__ = ["FrcCurve", "fourier_ring_correlation", "resolution_cutoff"]


@dataclass(frozen=True)
class FrcCurve:
    """FRC values per frequency ring.

    Attributes
    ----------
    frequency:
        Ring center frequencies in cycles/pixel (0 .. 0.5 Nyquist).
    correlation:
        FRC value per ring, in [0, 1] up to noise.
    """

    frequency: np.ndarray
    correlation: np.ndarray

    def cutoff(self, threshold: float = 1.0 / 7.0) -> float:
        """First frequency where the curve falls below ``threshold``
        (cycles/pixel); Nyquist (0.5) if it never does."""
        below = np.flatnonzero(self.correlation < threshold)
        if below.size == 0:
            return 0.5
        return float(self.frequency[below[0]])

    def resolution_px(self, threshold: float = 1.0 / 7.0) -> float:
        """Half-period resolution in pixels (1 / (2 * cutoff))."""
        cut = self.cutoff(threshold)
        if cut <= 0:
            return float("inf")
        return 1.0 / (2.0 * cut)


def _as_complex(image: np.ndarray) -> np.ndarray:
    """Promote to the *matching* complex precision: float32/float16 →
    complex64, float64 → complex128, complex untouched.  (The historical
    force-cast to complex128 silently doubled the transform cost of
    complex64 reconstructions.)"""
    arr = np.asarray(image)
    if arr.dtype.kind == "c":
        return arr
    if arr.dtype in (np.float32, np.float16):
        return arr.astype(np.complex64)
    return arr.astype(np.complex128)


def fourier_ring_correlation(
    image_a: np.ndarray, image_b: np.ndarray, n_rings: Optional[int] = None
) -> FrcCurve:
    """FRC between two (2-D, real or complex) images of equal shape.

    Transforms run at each image's own precision (ring statistics always
    accumulate in double, so the curve itself is float64 either way).
    """
    if image_a.shape != image_b.shape:
        raise ValueError(f"shape mismatch: {image_a.shape} vs {image_b.shape}")
    if image_a.ndim != 2:
        raise ValueError("FRC operates on 2-D images")
    rows, cols = image_a.shape
    if n_rings is None:
        n_rings = min(rows, cols) // 2
    if n_rings < 2:
        raise ValueError("images too small for ring statistics")

    fa = fft2c(_as_complex(image_a))
    fb = fft2c(_as_complex(image_b))

    ky = np.fft.fftshift(np.fft.fftfreq(rows))[:, None]
    kx = np.fft.fftshift(np.fft.fftfreq(cols))[None, :]
    k = np.hypot(ky, kx)

    edges = np.linspace(0.0, 0.5, n_rings + 1)
    ring = np.clip(np.digitize(k, edges) - 1, 0, n_rings - 1)

    cross = np.zeros(n_rings, dtype=np.complex128)
    power_a = np.zeros(n_rings)
    power_b = np.zeros(n_rings)
    np.add.at(cross, ring.ravel(), (fa * np.conj(fb)).ravel())
    np.add.at(power_a, ring.ravel(), (np.abs(fa) ** 2).ravel())
    np.add.at(power_b, ring.ravel(), (np.abs(fb) ** 2).ravel())

    denom = np.sqrt(power_a * power_b)
    correlation = np.abs(cross) / np.where(denom > 0, denom, 1.0)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return FrcCurve(frequency=centers, correlation=correlation)


def resolution_cutoff(
    image_a: np.ndarray,
    image_b: np.ndarray,
    threshold: float = 1.0 / 7.0,
    pixel_size: float = 1.0,
) -> float:
    """Half-period resolution in physical units (``pixel_size`` per px)."""
    curve = fourier_ring_correlation(image_a, image_b)
    return curve.resolution_px(threshold) * pixel_size
