"""Strong-scaling arithmetic (Tables II/III row 5, Fig. 7a)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["speedups", "strong_scaling_efficiency", "is_superlinear"]


def _check(times: Sequence[float], units: Sequence[int]) -> None:
    if len(times) != len(units) or not times:
        raise ValueError("times and units must be equal-length, non-empty")
    if any(t <= 0 for t in times):
        raise ValueError("times must be positive")
    if any(u <= 0 for u in units):
        raise ValueError("unit counts must be positive")


def speedups(times: Sequence[float], units: Sequence[int]) -> List[float]:
    """Speedup of every configuration relative to the first."""
    _check(times, units)
    return [times[0] / t for t in times]


def strong_scaling_efficiency(
    times: Sequence[float], units: Sequence[int]
) -> List[float]:
    """Efficiency (%) relative to the first configuration:
    ``100 * t0*u0 / (t*u)`` — the paper's fifth table row."""
    _check(times, units)
    base = times[0] * units[0]
    return [100.0 * base / (t * u) for t, u in zip(times, units)]


def is_superlinear(
    times: Sequence[float], units: Sequence[int], index: int
) -> bool:
    """True when configuration ``index`` scales super-linearly relative to
    the base (> 100% efficiency, the paper's headline behaviour)."""
    eff = strong_scaling_efficiency(times, units)
    if not (0 <= index < len(eff)):
        raise ValueError("index out of range")
    return eff[index] > 100.0
