"""Table II — small Lead Titanate dataset, full-scale performance model.

Regenerates both halves of the paper's Table II (Gradient Decomposition
and Halo Voxel Exchange on 6..462 GPUs) from the exact full-size
decomposition geometry + event-simulated schedules, and prints them next
to the paper's reported numbers.
"""

import pytest

from repro.experiments import run_table2
from repro.perfmodel.predictor import NA


@pytest.fixture(scope="module")
def table2(benchmark_disabled=None):
    return run_table2()


def test_table2_regeneration(benchmark, show):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    show(result.format())

    # Contract assertions (shapes from the paper).
    assert all(r.feasible for r in result.gd_rows)
    by_gpus = {r.gpus: r for r in result.hve_rows}
    assert by_gpus[54].feasible
    assert not by_gpus[126].feasible  # the paper's NA row
    # GD base runtime within the calibration band of 360 min.
    assert 200 < float(result.gd_rows[0].runtime_min) < 520


def test_table2_memory_reduction_shape(show):
    result = run_table2(gpu_counts=(6, 462), hve_gpu_counts=(6,))
    first = float(result.gd_rows[0].memory_gb)
    last = float(result.gd_rows[-1].memory_gb)
    show(
        f"Table II memory: {first:.2f} GB @6 -> {last:.2f} GB @462 "
        f"({first / last:.1f}x reduction; paper: 2.53 -> 0.23 = 11x)"
    )
    assert 5 < first / last < 25
