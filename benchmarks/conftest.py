"""Benchmark-suite fixtures.

Each ``bench_*`` module regenerates one paper artifact; the printed
paper-vs-measured tables land in the captured output (run with ``-s`` to
see them live) and are recorded in EXPERIMENTS.md.
"""

import pytest


@pytest.fixture(scope="session")
def show():
    """Print a block so it survives pytest's capture when run with -s and
    stays greppable in CI logs otherwise."""

    def _show(text: str) -> None:
        print("\n" + text + "\n")

    return _show
