"""Ablation: delayed-accumulation period T (Alg. 1 line 9).

Extends Fig. 9 with a denser sweep: messages scale as 1/T while the
convergence quality stays flat or improves — the paper's argument for
communicating once per iteration.
"""

import pytest

from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.metrics.convergence import auc_cost
from repro.parallel.topology import MeshLayout
from repro.physics.dataset import (
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)


@pytest.fixture(scope="module")
def workload():
    spec = scaled_pbtio3_spec(
        scan_grid=(9, 9), detector_px=20, n_slices=2, circle_overlap=0.78
    )
    dataset = simulate_dataset(spec, seed=13)
    return dataset, suggest_lr(dataset, alpha=0.3)


def run_period(dataset, lr, period):
    recon = GradientDecompositionReconstructor(
        mesh=MeshLayout(3, 3), iterations=6, lr=lr, mode="alg1",
        sync_period=period,
    )
    return recon.reconstruct(dataset)


def test_sync_period_sweep(benchmark, workload, show):
    dataset, lr = workload
    periods = [1, 3, 9, "iteration"]
    results = {p: run_period(dataset, lr, p) for p in periods}
    benchmark.pedantic(
        run_period, args=(dataset, lr, "iteration"), rounds=1, iterations=1
    )

    lines = ["delayed accumulation sweep (T = probes between passes):"]
    for p, res in results.items():
        lines.append(
            f"  T={p!s:>9}: messages={res.messages:6d} "
            f"AUC={auc_cost(res.history):6.3f} final={res.final_cost:.3e}"
        )
    show("\n".join(lines))

    msg = [results[p].messages for p in (1, 3, 9)]
    assert msg[0] > msg[1] > msg[2]
    # A communication-reduced setting matches (or beats) per-probe passes
    # in convergence quality — the paper's Sec. VI-F argument.  Which
    # reduced T wins depends on probes-per-rank and step size (large
    # lumped buffer updates can overshoot too), so we assert on the best
    # reduced setting rather than a specific one.
    best_reduced = min(
        auc_cost(results[p].history) for p in (3, 9, "iteration")
    )
    assert best_reduced <= 1.05 * auc_cost(results[1].history)
