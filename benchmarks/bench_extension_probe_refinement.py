"""Extension: distributed probe refinement (not in the paper).

The probe is one small global array; its gradient synchronizes with a
cheap all-reduce while the volume keeps using the paper's passes.  This
bench times the overhead and checks it is negligible, plus verifies the
consensus equivalence at benchmark scale.
"""

import numpy as np
import pytest

from repro.baseline.serial import SerialReconstructor
from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.physics.dataset import (
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)


@pytest.fixture(scope="module")
def workload():
    spec = scaled_pbtio3_spec(
        scan_grid=(6, 6), detector_px=24, n_slices=2, overlap_ratio=0.72
    )
    dataset = simulate_dataset(spec, seed=19)
    return dataset, suggest_lr(dataset, 0.4)


def run(dataset, lr, refine):
    return GradientDecompositionReconstructor(
        n_ranks=4, iterations=4, lr=lr, mode="synchronous",
        refine_probe=refine,
    ).reconstruct(dataset)


def test_refinement_runtime_overhead(benchmark, workload, show):
    dataset, lr = workload
    result = benchmark.pedantic(
        run, args=(dataset, lr, True), rounds=1, iterations=1
    )
    plain = run(dataset, lr, False)
    extra_msgs = result.messages - plain.messages
    show(
        f"probe refinement: +{extra_msgs} messages over "
        f"{plain.messages} (one ProbeSync/iteration)"
    )
    assert result.probe is not None
    # One small all-reduce per iteration: bounded message overhead and
    # negligible byte overhead next to the volume passes.
    assert 0 < extra_msgs <= plain.messages
    # At this toy scale the volume passes are only ~0.7 MB, so the probe
    # all-reduce is visible; at paper scale (100-slice volumes) it is
    # negligible.  Bound it loosely here.
    byte_overhead = result.message_bytes - plain.message_bytes
    assert byte_overhead < 0.5 * plain.message_bytes


def test_consensus_equivalence(workload, show):
    dataset, lr = workload
    dist = run(dataset, lr, True)
    serial = SerialReconstructor(
        iterations=4, lr=lr, refine_probe=True
    ).reconstruct(dataset)
    diff = float(np.abs(dist.probe - serial.probe).max())
    show(f"distributed vs serial refined probe: max diff {diff:.2e}")
    assert diff < 1e-10
