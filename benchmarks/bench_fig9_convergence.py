"""Fig. 9 — convergence vs communication frequency (real reconstructions).

Three delayed-accumulation settings of Alg. 1 (passes per probe location,
twice per iteration, once per iteration) on a 42-rank mesh.  Paper shape:
the reduced frequencies converge at least as fast while communicating far
less.
"""

import pytest

from repro.experiments import run_fig9
from repro.parallel.topology import MeshLayout


def test_fig9_regeneration(benchmark, show):
    result = benchmark.pedantic(
        run_fig9, rounds=1, iterations=1, kwargs={"iterations": 8}
    )
    show(result.format())

    assert result.reduced_frequency_wins()
    assert result.communication_savings() > 2.0
    for history in result.histories.values():
        assert history[-1] < history[0]


def test_fig9_message_scaling(show):
    """Messages scale with pass frequency exactly."""
    result = run_fig9(mesh=MeshLayout(3, 3), iterations=4)
    per_probe = result.message_counts["every probe location"]
    per_iter = result.message_counts["once per iteration"]
    show(f"messages: per-probe={per_probe} once-per-iteration={per_iter}")
    assert per_probe > 3 * per_iter
