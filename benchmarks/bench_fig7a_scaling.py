"""Fig. 7a — strong-scaling curves for both datasets vs ideal O(1/P)."""

import pytest

from repro.experiments import run_fig7a


def test_fig7a_regeneration(benchmark, show):
    result = benchmark.pedantic(run_fig7a, rounds=1, iterations=1)
    show(result.format())

    # Super-linear region exists on both curves (runtime below the ideal
    # O(1/P) line), as in the paper's figure.
    assert result.superlinear_points("large Lead Titanate")
    small_pts = result.superlinear_points("small Lead Titanate")
    # The small dataset's super-linearity is milder; require the curve to
    # at least track the ideal line closely somewhere.
    series = next(
        s for s in result.series if s.label == "small Lead Titanate"
    )
    ratios = [
        t / i for t, i in zip(series.runtime_min, series.ideal_runtime_min())
    ]
    assert min(ratios) < 1.2


def test_fig7a_monotone_runtimes():
    result = run_fig7a(small_gpus=(6, 54, 462), large_gpus=(6, 54, 462))
    for series in result.series:
        assert series.runtime_min == sorted(series.runtime_min, reverse=True)
