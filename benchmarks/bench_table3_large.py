"""Table III — large Lead Titanate dataset (the headline table).

Regenerates runtime/memory/efficiency for 6..4158 GPUs and checks the
paper's abstract-level claims: ~51x memory reduction, 9x more scalable
than Halo Voxel Exchange, near-real-time reconstruction at full scale.
"""

import pytest

from repro.experiments import run_table3


def test_table3_regeneration(benchmark, show):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    show(result.format())
    show(
        f"headline factors: memory reduction {result.memory_reduction_factor():.0f}x "
        f"(paper 51x), scalability {result.scalability_factor():.0f}x (paper 9x), "
        f"speed {result.speed_factor():.0f}x (paper 86x)"
    )

    assert all(r.feasible for r in result.gd_rows)
    assert result.scalability_factor() == pytest.approx(9.0, rel=0.01)
    assert result.memory_reduction_factor() > 25
    assert float(result.gd_rows[-1].runtime_min) < 6.0  # near real time


def test_table3_superlinear_efficiency(show):
    result = run_table3(gpu_counts=(6, 54, 462), hve_gpu_counts=(6,))
    eff = {r.gpus: float(r.efficiency_pct) for r in result.gd_rows}
    show(f"strong scaling efficiency: {eff} (paper: 100/336/509%)")
    assert eff[54] > 150
    assert eff[462] > 150
