"""Ablation: halo width (the paper's 600 pm design choice).

Sweeps the fixed halo width of the gradient decomposition: narrower halos
cut memory but truncate more of each probe's gradient (Sec. III accepts
this because gradients are "almost zero" outside the probe circle).  The
bench records the memory/quality trade-off that motivates the paper's
600 pm setting (~probe radius).
"""

import numpy as np
import pytest

from repro.baseline.serial import SerialReconstructor
from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.parallel.topology import MeshLayout
from repro.physics.dataset import (
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)


@pytest.fixture(scope="module")
def workload():
    spec = scaled_pbtio3_spec(
        scan_grid=(8, 8), detector_px=24, n_slices=2, circle_overlap=0.8
    )
    dataset = simulate_dataset(spec, seed=42)
    return dataset, suggest_lr(dataset, alpha=0.35)


def run_halo(dataset, lr, halo):
    recon = GradientDecompositionReconstructor(
        mesh=MeshLayout(2, 2), iterations=6, lr=lr, mode="synchronous",
        halo=halo,
    )
    return recon.reconstruct(dataset)


def test_halo_width_sweep(benchmark, workload, show):
    dataset, lr = workload
    results = {}
    for halo in (2, 6, 10, "exact"):
        results[halo] = run_halo(dataset, lr, halo)
    benchmark.pedantic(
        run_halo, args=(dataset, lr, 6), rounds=1, iterations=1
    )

    serial = SerialReconstructor(iterations=6, lr=lr)
    ref = serial.reconstruct(dataset)
    lines = ["halo width sweep (GD synchronous, 2x2 mesh):"]
    for halo, res in results.items():
        err = float(np.abs(res.volume - ref.volume).max())
        lines.append(
            f"  halo={halo!s:>6}: mem/rank={res.peak_memory_mean / 1e6:6.2f} MB"
            f"  max|V - V_serial|={err:.2e}  final cost={res.final_cost:.3e}"
        )
    show("\n".join(lines))

    # Memory monotone in halo width; truncation error monotone the other
    # way; exact halo reproduces serial exactly.
    mems = [results[h].peak_memory_mean for h in (2, 6, 10)]
    assert mems == sorted(mems)
    errs = [
        float(np.abs(results[h].volume - ref.volume).max())
        for h in (2, 6, 10, "exact")
    ]
    assert errs[-1] < 1e-10
    assert errs[0] > errs[2]


def test_paper_halo_is_sufficient(workload):
    """A halo ~ the probe radius (the paper's choice) already matches the
    exact-halo reconstruction closely."""
    dataset, lr = workload
    radius = int(np.ceil(dataset.probe.spec.nominal_radius_px))
    trunc = run_halo(dataset, lr, radius + 2)
    exact = run_halo(dataset, lr, "exact")
    rel = float(
        np.abs(trunc.volume - exact.volume).max()
        / np.abs(exact.volume).max()
    )
    assert rel < 0.05
