"""Fig. 8 — seam artifacts (real reconstructions).

Both algorithms reconstruct the same high-overlap acquisition on the same
3x3 mesh; the seam metric quantifies tile-border discontinuities.  Paper
shape: Halo Voxel Exchange shows clear seams, Gradient Decomposition is
indistinguishable from the serial reference.
"""

import pytest

from repro.experiments import run_fig8


def test_fig8_regeneration(benchmark, show):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    show(result.format())

    assert result.hve_has_seams, (
        f"expected HVE seams: hve={result.seam_hve:.3f} "
        f"gd={result.seam_gd:.3f} serial={result.seam_serial:.3f}"
    )
    assert result.gd_seam_free


def test_fig8_seam_ordering(show):
    """hve > gd ~= serial — the figure's qualitative content."""
    result = run_fig8(iterations=8, inner_sweeps=8)
    show(
        f"seam scores: serial={result.seam_serial:.3f} "
        f"gd={result.seam_gd:.3f} hve={result.seam_hve:.3f}"
    )
    assert result.seam_hve > result.seam_gd
    assert abs(result.seam_gd - result.seam_serial) < 0.25
