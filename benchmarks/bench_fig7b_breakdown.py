"""Fig. 7b — compute/wait/comm breakdown, APPP vs w/o APPP.

The paper's claims checked here:
* APPP keeps communication overhead low even at 462 GPUs;
* without APPP (global all-reduce) communication dominates at 462 GPUs;
* GPU waiting time decreases as GPUs increase.
"""

import pytest

from repro.experiments import run_fig7b


def test_fig7b_regeneration(benchmark, show):
    result = benchmark.pedantic(
        run_fig7b, rounds=1, iterations=1,
        kwargs={"gpu_counts": (24, 54, 126, 198, 462)},
    )
    show(result.format())
    show(
        f"comm(w/o APPP)/comm(APPP) at 462 GPUs = "
        f"{result.comm_ratio(462):.0f}x (paper: 16x)"
    )

    assert result.comm_ratio(462) > 10.0
    waits = result.wait_series("appp")
    assert waits[462] < waits[24]
    worst = next(
        r for r in result.rows if r.gpus == 462 and r.planner == "w/o appp"
    )
    assert worst.comm_min > worst.compute_min


def test_fig7b_appp_total_always_wins(show):
    result = run_fig7b(gpu_counts=(54, 462))
    for gpus in (54, 462):
        appp = next(
            r for r in result.rows if r.gpus == gpus and r.planner == "appp"
        )
        other = next(
            r
            for r in result.rows
            if r.gpus == gpus and r.planner == "w/o appp"
        )
        assert appp.total_min < other.total_min
