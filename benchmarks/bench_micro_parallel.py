"""Micro-benchmarks of the parallel substrate: decomposition at full
scale, schedule compilation, event simulation, message layer."""

import numpy as np
import pytest

from repro.core.decomposition import decompose_gradient
from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.parallel.comm import VirtualComm
from repro.parallel.event_sim import EventSimulator
from repro.parallel.network import NetworkModel
from repro.parallel.topology import ClusterTopology, MeshLayout
from repro.perfmodel.cost_model import SummitCostModel
from repro.perfmodel.machine import SUMMIT
from repro.physics.dataset import large_pbtio3_spec
from repro.physics.scan import RasterScan


@pytest.fixture(scope="module")
def full_scale():
    spec = large_pbtio3_spec()
    scan = RasterScan(spec.scan_spec(), probe_window_px=spec.detector_px)
    return spec, scan


def test_decompose_4158_ranks(benchmark, full_scale):
    """Full-size geometry must stay interactive (< 1 s)."""
    spec, scan = full_scale
    decomp = benchmark(
        decompose_gradient,
        scan,
        spec.object_shape,
        MeshLayout(63, 66),
        None,
        60,
    )
    assert decomp.n_ranks == 4158


def test_schedule_compilation_4158_ranks(benchmark, full_scale):
    spec, scan = full_scale
    decomp = decompose_gradient(
        scan, spec.object_shape, mesh=MeshLayout(63, 66), halo=60
    )
    recon = GradientDecompositionReconstructor(
        mesh=decomp.mesh, iterations=1, halo=60
    )
    schedule = benchmark(recon.build_iteration_schedule, decomp)
    assert len(schedule) > 4158


def test_event_simulation_4158_ranks(benchmark, full_scale):
    spec, scan = full_scale
    decomp = decompose_gradient(
        scan, spec.object_shape, mesh=MeshLayout(63, 66), halo=60
    )
    recon = GradientDecompositionReconstructor(
        mesh=decomp.mesh, iterations=1, halo=60
    )
    schedule = recon.build_iteration_schedule(decomp)
    costs = SummitCostModel(spec, decomp, SUMMIT)
    net = NetworkModel(
        ClusterTopology(4158),
        intra_node=SUMMIT.intra_link(),
        inter_node=SUMMIT.inter_link(),
        collective=SUMMIT.collective_link(),
    )
    sim = EventSimulator(net, costs)
    report = benchmark(sim.run, schedule)
    assert report.makespan_s > 0


def test_virtual_comm_throughput(benchmark):
    comm = VirtualComm(8)
    payload = np.zeros((64, 64), dtype=np.complex128)

    def roundtrip():
        for dst in range(1, 8):
            comm.send(payload, 0, dst)
        for dst in range(1, 8):
            comm.recv(dst, 0)

    benchmark(roundtrip)
    assert comm.pending_messages() == 0
