"""Table I — dataset inventory + simulation throughput.

Regenerates the dataset-size table (structural equality with the paper is
asserted) and benchmarks the acquisition simulator at a scaled size.
"""

import pytest

from repro.experiments import run_table1
from repro.physics.dataset import scaled_pbtio3_spec, simulate_dataset


def test_table1_inventory(benchmark, show):
    result = benchmark(run_table1)
    show(result.format())
    assert result.matches_paper()


def test_dataset_simulation_throughput(benchmark):
    """Probe-position simulation rate of the forward model."""
    spec = scaled_pbtio3_spec(scan_grid=(6, 6), detector_px=32, n_slices=4)
    dataset = benchmark(simulate_dataset, spec, 0)
    assert dataset.n_probes == 36


def test_dataset_simulation_with_noise(benchmark):
    spec = scaled_pbtio3_spec(scan_grid=(4, 4), detector_px=24, n_slices=2)
    dataset = benchmark(simulate_dataset, spec, 0, 1e5)
    assert dataset.amplitudes.min() >= 0
