"""Ablation: Algorithm 1's local-gradient double application.

As printed, Alg. 1 applies each local gradient at line 8 *and* again
inside the accumulated buffer at line 15 (DESIGN.md Sec. 6).  This bench
quantifies the consequence in the high-overlap regime and the effect of
the ``compensate_local`` correction:

* faithful double-apply: effective step ~2x in owned regions -> fast early
  progress at small steps, instability at practical ones;
* compensated: stable across the step-size range and seam-free.
"""

import numpy as np
import pytest

from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.metrics.seam import seam_metric
from repro.parallel.topology import MeshLayout
from repro.physics.dataset import (
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)


@pytest.fixture(scope="module")
def workload():
    spec = scaled_pbtio3_spec(
        scan_grid=(12, 12), detector_px=20, n_slices=2, circle_overlap=0.8
    )
    dataset = simulate_dataset(spec, seed=3)
    return dataset, suggest_lr(dataset, 1.0)  # alpha scaled below


def run(dataset, base_lr, alpha, compensate):
    recon = GradientDecompositionReconstructor(
        mesh=MeshLayout(3, 3),
        iterations=8,
        lr=alpha * base_lr,
        mode="alg1",
        compensate_local=compensate,
    )
    return recon.reconstruct(dataset)


def test_double_apply_ablation(benchmark, workload, show):
    dataset, base_lr = workload
    rows = []
    for alpha in (0.1, 0.25, 0.4):
        for compensate in (False, True):
            result = run(dataset, base_lr, alpha, compensate)
            final = result.history[-1]
            seam = (
                seam_metric(
                    result.volume,
                    result.decomposition,
                    margin=dataset.spec.detector_px // 2,
                )
                if np.isfinite(result.volume).all()
                else float("nan")
            )
            rows.append((alpha, compensate, final, seam))
    benchmark.pedantic(
        run, args=(dataset, base_lr, 0.25, True), rounds=1, iterations=1
    )

    lines = ["Alg. 1 double-apply ablation (high overlap, 3x3 mesh):"]
    for alpha, compensate, final, seam in rows:
        tag = "compensated" if compensate else "as printed "
        final_s = f"{final:.3e}" if np.isfinite(final) else "diverged"
        lines.append(
            f"  alpha={alpha:4.2f} {tag}: final cost {final_s:>10}  "
            f"seam {seam:5.2f}"
        )
    show("\n".join(lines))

    by_key = {(a, c): (f, s) for a, c, f, s in rows}
    # The compensated variant stays finite at every tested step size.
    for alpha in (0.1, 0.25, 0.4):
        assert np.isfinite(by_key[(alpha, True)][0])
    # At the largest step the as-printed variant is strictly worse
    # (diverged or >= 10x higher final cost).
    printed, compensated = by_key[(0.4, False)][0], by_key[(0.4, True)][0]
    assert (not np.isfinite(printed)) or printed > 10 * compensated
