#!/usr/bin/env python
"""Benchmark harness: backend x precision, and serial-vs-process runtime.

``--suite backends`` (default) -> ``BENCH_backends.json``.  Three
benches for every available backend x dtype scenario:

* ``batched_fft`` — the batched probe-window transform micro-kernel
  (the ``(n_slices, window, window)`` fft2c/ifft2c round trip that
  dominates the multislice sweep);
* ``multislice_gradient`` — one full cost+gradient evaluation (forward
  sweep + adjoint recursion);
* ``small_recon`` — an end-to-end serial reconstruction on a scaled
  PbTiO3 acquisition.

``--suite runtime`` -> ``BENCH_runtime.json``.  The gd solver end to
end under the ``serial`` executor vs the ``process`` executor (each
rank in a worker process, tile state in shared memory), reporting the
multi-worker speedup.  On a single-CPU machine the expected speedup is
~1x (the harness records ``cpu_count`` so readers can judge).  Each
scenario also runs one *traced* pass (outside the timing loop — the
telemetry guard is not free at full instrumentation) and records the
phase breakdown (fft/gradient/halo/collective/store/queue seconds), so
the serial-vs-process gap decomposes into compute vs
dispatch/collect overhead instead of staying one opaque number.

``--suite data`` -> ``BENCH_data.json``.  The streaming/batching
pipeline (:mod:`repro.data`): the gd solver (synchronous mode, the
batchable configuration) per-position vs batched on the threaded
backend — every batch size is bit-identical to batch 1, so the speedup
is free — plus the same run streaming from a chunked on-disk store
(with and without prefetch), a raw store-read sweep (in-memory vs
chunked), and a mixed-state mode sweep (``probe_modes`` 1/2/4 with
probe refinement) showing how the per-sweep cost scales with the
number of incoherent probe modes.

``--suite service`` -> ``BENCH_service.json``.  The async job layer
(:mod:`repro.service`): a batch of identical gd reconstructions
submitted to a :class:`~repro.service.ReconstructionService` at worker
pool widths 1/2/4, reporting batch makespan, throughput (jobs/s) and
queue latency (submit -> start, mean and max).  Jobs run in worker
threads, so the concurrency speedup tracks how well the FFT kernels
release the GIL on this machine (``cpu_count`` recorded alongside).

``--suite all`` runs all four.

Wall times are best-of-``--repeats`` (min is the standard low-noise
estimator for micro-benchmarks); speedups are reported against the
suite baseline (``numpy``/``complex128``, resp. ``serial``).
``--smoke`` shrinks sizes and repeats so CI can exercise the harness in
seconds.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --smoke
    PYTHONPATH=src python benchmarks/run_benchmarks.py \
        --backends numpy,threaded --dtypes complex64 --out bench.json
    PYTHONPATH=src python benchmarks/run_benchmarks.py \
        --suite runtime --runtime-out BENCH_runtime.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.backend import (
    available_backend_names,
    get_backend,
    resolve_precision,
)
from repro.baseline.serial import SerialReconstructor
from repro.experiments.report import format_table
from repro.physics.dataset import (
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)
from repro.utils.fftutils import fft2c, ifft2c

BASELINE = {"backend": "numpy", "dtype": "complex128"}

#: (batch, window) of the micro-kernel; (window, slices) of the gradient
#: kernel; (grid, detector, slices, iterations) of the small recon.
FULL_SIZES = {
    "batched_fft": (32, 128, 20),          # batch, n, inner reps
    "multislice_gradient": (64, 8, 5),     # window, slices, inner reps
    "small_recon": ((4, 4), 24, 2, 2),     # grid, detector, slices, iters
}
SMOKE_SIZES = {
    "batched_fft": (8, 32, 5),
    "multislice_gradient": (24, 2, 2),
    "small_recon": ((3, 3), 16, 2, 1),
}


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    fn()  # warm-up: plan caches, twiddle tables, allocator
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_batched_fft(backend_name, dtype_name, sizes, repeats) -> float:
    batch, n, inner = sizes
    backend = get_backend(backend_name)
    cdtype = resolve_precision(dtype_name).complex_dtype
    rng = np.random.default_rng(0)
    stack = (
        rng.normal(size=(batch, n, n)) + 1j * rng.normal(size=(batch, n, n))
    ).astype(cdtype)

    def run():
        for _ in range(inner):
            ifft2c(fft2c(stack, backend), backend)

    return _best_of(run, repeats) / inner


def bench_multislice_gradient(backend_name, dtype_name, sizes, repeats) -> float:
    from repro.physics.multislice import MultisliceModel
    from repro.physics.probe import ProbeSpec, make_probe

    window, slices, inner = sizes
    model = MultisliceModel(
        window, slices, 10.0, 2.508, 125.0,
        backend=backend_name, dtype=dtype_name,
    )
    probe = make_probe(
        ProbeSpec(window=window, defocus_pm=5000.0, pixel_size_pm=10.0)
    ).array
    rng = np.random.default_rng(1)
    obj = np.exp(1j * 0.1 * rng.normal(size=(slices, window, window)))
    truth = np.exp(1j * 0.1 * rng.normal(size=(slices, window, window)))
    measured = model.forward_amplitude(probe, truth)

    def run():
        for _ in range(inner):
            model.cost_and_gradient(probe, obj, measured)

    return _best_of(run, repeats) / inner


def bench_small_recon(backend_name, dtype_name, sizes, repeats, dataset_cache={}) -> float:
    grid, detector, slices, iters = sizes
    key = (grid, detector, slices)
    if key not in dataset_cache:
        spec = scaled_pbtio3_spec(
            scan_grid=grid, detector_px=detector, n_slices=slices,
            overlap_ratio=0.7,
        )
        dataset_cache[key] = simulate_dataset(spec, seed=3)
    dataset = dataset_cache[key]
    lr = suggest_lr(dataset, alpha=0.35)
    solver = SerialReconstructor(
        iterations=iters, lr=lr, backend=backend_name, dtype=dtype_name
    )

    def run():
        solver.reconstruct(dataset)

    return _best_of(run, repeats)


BENCHES = {
    "batched_fft": bench_batched_fft,
    "multislice_gradient": bench_multislice_gradient,
    "small_recon": bench_small_recon,
}

# ----------------------------------------------------------------------
# Runtime suite: serial vs process executor on the gd solver
# ----------------------------------------------------------------------
#: (grid, detector, slices, n_ranks, iterations) of the gd runtime bench.
#: Sized so per-iteration compute dominates the worker launch overhead
#: (~60 ms) — the regime where a multi-core machine shows the speedup.
RUNTIME_FULL_SIZES = {"gd_recon": ((12, 12), 32, 3, 4, 5)}
RUNTIME_SMOKE_SIZES = {"gd_recon": ((4, 4), 16, 2, 4, 1)}
RUNTIME_BASELINE = "serial"


def bench_gd_runtime(executor, workers, sizes, repeats, dataset_cache={}):
    """End-to-end gd reconstruction wall time under one executor.

    The measurement includes executor launch (worker spawn + shared
    memory setup) — that overhead is part of what a user pays, so hiding
    it would overstate the speedup.
    """
    from repro.core.reconstructor import GradientDecompositionReconstructor

    grid, detector, slices, n_ranks, iters = sizes
    key = (grid, detector, slices)
    if key not in dataset_cache:
        spec = scaled_pbtio3_spec(
            scan_grid=grid, detector_px=detector, n_slices=slices,
            overlap_ratio=0.7,
        )
        dataset_cache[key] = simulate_dataset(spec, seed=7)
    dataset = dataset_cache[key]
    lr = suggest_lr(dataset, alpha=0.35)
    solver = GradientDecompositionReconstructor(
        n_ranks=n_ranks, iterations=iters, lr=lr, backend="numpy",
        executor=executor, runtime_workers=workers,
    )

    def run():
        solver.reconstruct(dataset)

    seconds = _best_of(run, repeats)

    # One traced pass, deliberately outside the timing loop: full
    # instrumentation is cheap but not free, and the phase *shares* are
    # what matters — where does the serial-vs-process gap come from
    # (compute? halo? the parent's dispatch/collect round-trip?).
    from repro.obs import Telemetry, activate

    tel = Telemetry()
    with activate(tel):
        solver.reconstruct(dataset)
    summary = tel.summary()
    phases = {
        "breakdown": summary["breakdown"],
        "collect_seconds": summary["counters"].get(
            "runtime.collect.seconds"
        ),
    }
    return seconds, phases


def run_runtime_suite(sizes, repeats, workers=None):
    results = []
    sz = sizes["gd_recon"]
    n_ranks = sz[3]
    workers = workers if workers is not None else min(
        n_ranks, os.cpu_count() or 1
    )
    scenarios = [("serial", None), ("process", workers)]
    for executor, w in scenarios:
        seconds, phases = bench_gd_runtime(executor, w, sz, repeats)
        results.append({
            "bench": "gd_recon",
            "executor": executor,
            "workers": w if w is not None else 1,
            "n_ranks": n_ranks,
            "iterations": sz[4],
            "seconds": seconds,
            "phases": phases,
        })
    base = {
        r["bench"]: r["seconds"]
        for r in results
        if r["executor"] == RUNTIME_BASELINE
    }
    for r in results:
        ref = base.get(r["bench"])
        r["speedup_vs_serial"] = ref / r["seconds"] if ref else None
    return results


# ----------------------------------------------------------------------
# Data suite: per-position vs batched, in-memory vs chunked store
# ----------------------------------------------------------------------
#: (grid, detector, slices, n_ranks, iterations) of the gd data bench
#: and the batch sizes swept.  Sized so per-probe Python/FFT dispatch
#: overhead is visible — the overhead batching exists to amortize.
DATA_FULL_SIZES = {
    "gd_batched_recon": ((10, 10), 32, 3, 4, 2),
    "batch_sizes": [1, 8, 16],
    "store_chunk": 16,
    "probe_mode_counts": [1, 2, 4],
}
DATA_SMOKE_SIZES = {
    "gd_batched_recon": ((4, 4), 16, 2, 4, 1),
    "batch_sizes": [1, 4],
    "store_chunk": 4,
    "probe_mode_counts": [1, 2],
}
#: The data-suite baseline scenario: per-position, in-memory.
DATA_BASELINE = {"batch_size": 1, "store": "memory"}


def _data_dataset(sizes, dataset_cache={}):
    grid, detector, slices, _, _ = sizes["gd_batched_recon"]
    key = (grid, detector, slices)
    if key not in dataset_cache:
        spec = scaled_pbtio3_spec(
            scan_grid=grid, detector_px=detector, n_slices=slices,
            overlap_ratio=0.7,
        )
        dataset_cache[key] = simulate_dataset(spec, seed=11)
    return dataset_cache[key]


def bench_gd_batched(dataset, batch_size, data_source, prefetch,
                     sizes, repeats) -> float:
    """End-to-end gd reconstruction (synchronous mode — the batchable
    configuration) under one data scenario, on the threaded backend at
    complex64 (the fast path batching is meant to feed)."""
    from repro.core.reconstructor import GradientDecompositionReconstructor

    _, _, _, n_ranks, iters = sizes["gd_batched_recon"]
    lr = suggest_lr(dataset, alpha=0.35)
    solver = GradientDecompositionReconstructor(
        n_ranks=n_ranks, iterations=iters, lr=lr, mode="synchronous",
        backend="threaded", dtype="complex64",
        data_source=data_source, batch_size=batch_size, prefetch=prefetch,
    )

    def run():
        solver.reconstruct(dataset)

    return _best_of(run, repeats)


def bench_gd_modes(dataset, probe_modes, sizes, repeats) -> float:
    """End-to-end mixed-state gd reconstruction (probe refinement on,
    so the full per-mode gradient + SVD re-orthogonalization path is
    on the clock); ``probe_modes=1`` is the scalar baseline."""
    from repro.core.reconstructor import GradientDecompositionReconstructor

    _, _, _, n_ranks, iters = sizes["gd_batched_recon"]
    lr = suggest_lr(dataset, alpha=0.35)
    solver = GradientDecompositionReconstructor(
        n_ranks=n_ranks, iterations=iters, lr=lr, mode="synchronous",
        backend="threaded", dtype="complex64",
        refine_probe=True, probe_modes=probe_modes,
        batch_size=sizes["batch_sizes"][-1],
    )

    def run():
        solver.reconstruct(dataset)

    return _best_of(run, repeats)


def bench_store_read(dataset, store_factory, repeats) -> float:
    """One sequential sweep over every measurement frame."""
    n = dataset.n_probes

    def run():
        store = store_factory()
        try:
            for i in range(n):
                store.read(i)
        finally:
            store.close()

    return _best_of(run, repeats)


def run_data_suite(sizes, repeats, store_dir) -> List[Dict]:
    from repro.data import ChunkedNpzStore, InMemoryStore, write_store

    dataset = _data_dataset(sizes)
    store_path = Path(store_dir) / "bench_store.npz"
    write_store(store_path, dataset, chunk_size=sizes["store_chunk"])

    results: List[Dict] = []
    grid, detector, slices, n_ranks, iters = sizes["gd_batched_recon"]
    scenarios = [
        (b, None, False) for b in sizes["batch_sizes"]
    ] + [
        (sizes["batch_sizes"][-1], str(store_path), False),
        (sizes["batch_sizes"][-1], str(store_path), True),
    ]
    for batch_size, data_source, prefetch in scenarios:
        seconds = bench_gd_batched(
            dataset, batch_size, data_source, prefetch, sizes, repeats
        )
        results.append({
            "bench": "gd_batched_recon",
            "batch_size": batch_size,
            "store": "chunked" if data_source else "memory",
            "prefetch": prefetch,
            "n_ranks": n_ranks,
            "iterations": iters,
            "seconds": seconds,
        })

    for store_name, pf, factory in (
        ("memory", False, lambda: InMemoryStore(dataset.amplitudes)),
        ("chunked", False, lambda: ChunkedNpzStore(store_path)),
        ("chunked", True, lambda: ChunkedNpzStore(
            store_path, prefetch=True
        )),
    ):
        seconds = bench_store_read(dataset, factory, repeats)
        results.append({
            "bench": "store_read",
            "batch_size": None,
            "store": store_name,
            "prefetch": pf,
            "n_probes": dataset.n_probes,
            "seconds": seconds,
        })

    for probe_modes in sizes["probe_mode_counts"]:
        seconds = bench_gd_modes(dataset, probe_modes, sizes, repeats)
        results.append({
            "bench": "gd_mixed_state_recon",
            "batch_size": sizes["batch_sizes"][-1],
            "store": "memory",
            "prefetch": False,
            "probe_modes": probe_modes,
            "n_ranks": n_ranks,
            "iterations": iters,
            "seconds": seconds,
        })

    base = {
        r["bench"]: r["seconds"]
        for r in results
        if r["store"] == "memory"
        and r["batch_size"] in (DATA_BASELINE["batch_size"], None)
    }
    # The mode sweep's baseline is its own scalar (M=1) run, not the
    # per-position scenario — the interesting number is the marginal
    # cost of each extra incoherent mode.
    base["gd_mixed_state_recon"] = next(
        r["seconds"] for r in results
        if r["bench"] == "gd_mixed_state_recon" and r["probe_modes"] == 1
    )
    for r in results:
        ref = base.get(r["bench"])
        r["speedup_vs_baseline"] = ref / r["seconds"] if ref else None
    return results


# ----------------------------------------------------------------------
# Service suite: job throughput and queue latency vs worker-pool width
# ----------------------------------------------------------------------
#: (grid, detector, slices, n_ranks, iterations) of each job, the number
#: of jobs per batch, and the pool widths swept.
SERVICE_FULL_SIZES = {
    "job": ((6, 6), 24, 2, 4, 3),
    "n_jobs": 8,
    "worker_counts": [1, 2, 4],
}
SERVICE_SMOKE_SIZES = {
    "job": ((3, 3), 16, 2, 4, 1),
    "n_jobs": 3,
    "worker_counts": [1, 2],
}
SERVICE_BASELINE_WORKERS = 1


def run_service_suite(sizes, repeats, root_dir) -> List[Dict]:
    import shutil

    from repro.api import ReconstructionConfig
    from repro.service import JobState, ReconstructionService

    grid, detector, slices, n_ranks, iters = sizes["job"]
    spec = scaled_pbtio3_spec(
        scan_grid=grid, detector_px=detector, n_slices=slices,
        overlap_ratio=0.7,
    )
    dataset = simulate_dataset(spec, seed=13)
    config = ReconstructionConfig(
        solver="gd",
        solver_params={
            "n_ranks": n_ranks, "iterations": iters,
            "lr": suggest_lr(dataset, alpha=0.35), "mode": "synchronous",
        },
    )

    results: List[Dict] = []
    for workers in sizes["worker_counts"]:
        best = None
        for rep in range(repeats):
            root = Path(root_dir) / f"w{workers}_r{rep}"
            with ReconstructionService(root, workers=workers) as service:
                t0 = time.perf_counter()
                handles = [
                    service.submit(dataset, config)
                    for _ in range(sizes["n_jobs"])
                ]
                for handle in handles:
                    state = handle.wait(timeout=600)
                    assert state == JobState.DONE, handle.record().error
                makespan = time.perf_counter() - t0
                latencies = [
                    h.record().started_at - h.record().submitted_at
                    for h in handles
                ]
            shutil.rmtree(root, ignore_errors=True)
            sample = {
                "makespan_s": makespan,
                "queue_latency_mean_s": sum(latencies) / len(latencies),
                "queue_latency_max_s": max(latencies),
            }
            if best is None or sample["makespan_s"] < best["makespan_s"]:
                best = sample
        results.append({
            "bench": "service_batch",
            "workers": workers,
            "n_jobs": sizes["n_jobs"],
            "iterations": iters,
            "seconds": best["makespan_s"],
            "throughput_jobs_per_s": sizes["n_jobs"] / best["makespan_s"],
            "queue_latency_mean_s": best["queue_latency_mean_s"],
            "queue_latency_max_s": best["queue_latency_max_s"],
        })

    base = next(
        (r["seconds"] for r in results
         if r["workers"] == SERVICE_BASELINE_WORKERS),
        None,
    )
    for r in results:
        r["speedup_vs_1worker"] = base / r["seconds"] if base else None
    return results


def run_suite(backends, dtypes, sizes, repeats) -> List[Dict]:
    results: List[Dict] = []
    for bench_name, bench_fn in BENCHES.items():
        for backend_name in backends:
            for dtype_name in dtypes:
                seconds = bench_fn(
                    backend_name, dtype_name, sizes[bench_name], repeats
                )
                results.append({
                    "bench": bench_name,
                    "backend": backend_name,
                    "dtype": dtype_name,
                    "seconds": seconds,
                })
    # Speedups against the numpy/complex128 entry of each bench (only
    # meaningful when the baseline scenario was part of the sweep).
    base = {
        r["bench"]: r["seconds"]
        for r in results
        if r["backend"] == BASELINE["backend"]
        and r["dtype"] == BASELINE["dtype"]
    }
    for r in results:
        ref = base.get(r["bench"])
        r["speedup_vs_baseline"] = (
            ref / r["seconds"] if ref else None
        )
    return results


def _machine_info():
    return {
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "python": sys.version.split()[0],
    }


def _run_backend_suite(args) -> Path:
    backends = (
        args.backends.split(",") if args.backends
        else available_backend_names()
    )
    dtypes = args.dtypes.split(",")
    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    repeats = args.repeats or (2 if args.smoke else 5)

    results = run_suite(backends, dtypes, sizes, repeats)

    payload = {
        "schema": "repro-bench-backends/1",
        "mode": "smoke" if args.smoke else "full",
        "baseline": BASELINE,
        "machine": _machine_info(),
        "sizes": {k: list(v) for k, v in sizes.items()},
        "repeats": repeats,
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            r["bench"], r["backend"], r["dtype"],
            f"{r['seconds'] * 1e3:.3f}",
            f"{r['speedup_vs_baseline']:.2f}x"
            if r["speedup_vs_baseline"] else "n/a",
        ]
        for r in results
    ]
    print(format_table(
        ["bench", "backend", "dtype", "ms", "vs numpy/c128"],
        rows,
        title=f"backend benchmarks ({payload['mode']}) -> {out}",
    ))
    return out


def _run_runtime_suite(args) -> Path:
    sizes = RUNTIME_SMOKE_SIZES if args.smoke else RUNTIME_FULL_SIZES
    repeats = args.repeats or (1 if args.smoke else 3)

    results = run_runtime_suite(
        sizes, repeats, workers=args.runtime_workers
    )

    payload = {
        "schema": "repro-bench-runtime/1",
        "mode": "smoke" if args.smoke else "full",
        "baseline": {"executor": RUNTIME_BASELINE},
        "machine": _machine_info(),
        "sizes": {
            k: [list(x[0]), *x[1:]] for k, x in sizes.items()
        },
        "repeats": repeats,
        "results": results,
    }
    out = Path(args.runtime_out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            r["bench"], r["executor"], r["workers"], r["n_ranks"],
            f"{r['seconds'] * 1e3:.1f}",
            f"{r['speedup_vs_serial']:.2f}x"
            if r["speedup_vs_serial"] else "n/a",
        ]
        for r in results
    ]
    print(format_table(
        ["bench", "executor", "workers", "ranks", "ms", "vs serial"],
        rows,
        title=f"runtime benchmarks ({payload['mode']}) -> {out}",
    ))
    return out


def _run_data_suite(args) -> Path:
    import tempfile

    sizes = DATA_SMOKE_SIZES if args.smoke else DATA_FULL_SIZES
    repeats = args.repeats or (1 if args.smoke else 3)

    with tempfile.TemporaryDirectory() as store_dir:
        results = run_data_suite(sizes, repeats, store_dir)

    payload = {
        "schema": "repro-bench-data/1",
        "mode": "smoke" if args.smoke else "full",
        "baseline": DATA_BASELINE,
        "machine": _machine_info(),
        "sizes": {
            "gd_batched_recon": [
                list(sizes["gd_batched_recon"][0]),
                *sizes["gd_batched_recon"][1:],
            ],
            "batch_sizes": list(sizes["batch_sizes"]),
            "store_chunk": sizes["store_chunk"],
            "probe_mode_counts": list(sizes["probe_mode_counts"]),
        },
        "repeats": repeats,
        "results": results,
    }
    out = Path(args.data_out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            r["bench"]
            + (f" M={r['probe_modes']}" if "probe_modes" in r else ""),
            r["batch_size"] if r["batch_size"] is not None else "-",
            r["store"] + ("+pf" if r["prefetch"] is True else ""),
            f"{r['seconds'] * 1e3:.1f}",
            f"{r['speedup_vs_baseline']:.2f}x"
            if r["speedup_vs_baseline"] else "n/a",
        ]
        for r in results
    ]
    print(format_table(
        ["bench", "batch", "store", "ms", "vs baseline"],
        rows,
        title=f"data benchmarks ({payload['mode']}) -> {out}",
    ))
    return out


def _run_service_suite(args) -> Path:
    import tempfile

    sizes = SERVICE_SMOKE_SIZES if args.smoke else SERVICE_FULL_SIZES
    repeats = args.repeats or (1 if args.smoke else 3)

    with tempfile.TemporaryDirectory() as root_dir:
        results = run_service_suite(sizes, repeats, root_dir)

    payload = {
        "schema": "repro-bench-service/1",
        "mode": "smoke" if args.smoke else "full",
        "baseline": {"workers": SERVICE_BASELINE_WORKERS},
        "machine": _machine_info(),
        "sizes": {
            "job": [list(sizes["job"][0]), *sizes["job"][1:]],
            "n_jobs": sizes["n_jobs"],
            "worker_counts": list(sizes["worker_counts"]),
        },
        "repeats": repeats,
        "results": results,
    }
    out = Path(args.service_out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            r["bench"], r["workers"], r["n_jobs"],
            f"{r['seconds']:.2f}",
            f"{r['throughput_jobs_per_s']:.2f}",
            f"{r['queue_latency_mean_s'] * 1e3:.0f}",
            f"{r['speedup_vs_1worker']:.2f}x"
            if r["speedup_vs_1worker"] else "n/a",
        ]
        for r in results
    ]
    print(format_table(
        ["bench", "workers", "jobs", "s", "jobs/s", "q-lat ms",
         "vs 1 worker"],
        rows,
        title=f"service benchmarks ({payload['mode']}) -> {out}",
    ))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite",
                        choices=["backends", "runtime", "data", "service",
                                 "all"],
                        default="backends",
                        help="which benchmark family to run")
    parser.add_argument("--out", default="BENCH_backends.json",
                        help="output path of the backend suite")
    parser.add_argument("--runtime-out", default="BENCH_runtime.json",
                        help="output path of the runtime suite")
    parser.add_argument("--data-out", default="BENCH_data.json",
                        help="output path of the data suite")
    parser.add_argument("--service-out", default="BENCH_service.json",
                        help="output path of the service suite")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes + few repeats (CI harness check)")
    parser.add_argument("--backends", default=None,
                        help="comma-separated subset (default: all available)")
    parser.add_argument("--dtypes", default="complex128,complex64")
    parser.add_argument("--runtime-workers", type=int, default=None,
                        help="process-executor pool width for the runtime "
                             "suite (default: min(ranks, cpu_count))")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of repeats (default: 5 full, 2 smoke; "
                             "runtime suite: 3 full, 1 smoke)")
    args = parser.parse_args(argv)

    if args.suite in ("backends", "all"):
        _run_backend_suite(args)
    if args.suite in ("runtime", "all"):
        _run_runtime_suite(args)
    if args.suite in ("data", "all"):
        _run_data_suite(args)
    if args.suite in ("service", "all"):
        _run_service_suite(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
