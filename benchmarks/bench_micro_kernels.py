"""Micro-benchmarks of the computational kernels.

Not a paper artifact; methodology support — these are the building blocks
whose modeled costs the performance model calibrates.
"""

import numpy as np
import pytest

from repro.physics.multislice import MultisliceModel
from repro.physics.probe import ProbeSpec, make_probe
from repro.physics.propagation import FresnelPropagator
from repro.utils.fftutils import fft2c


@pytest.fixture(scope="module")
def kernel_setup():
    rng = np.random.default_rng(0)
    n, slices = 64, 8
    model = MultisliceModel(n, slices, 10.0, 2.508, 125.0)
    probe = make_probe(
        ProbeSpec(window=n, defocus_pm=5000.0, pixel_size_pm=10.0)
    ).array
    obj = np.exp(1j * 0.1 * rng.normal(size=(slices, n, n)))
    measured = model.forward_amplitude(probe, obj * np.exp(1j * 0.02))
    return model, probe, obj, measured


def test_multislice_forward(benchmark, kernel_setup):
    model, probe, obj, _ = kernel_setup
    out = benchmark(model.forward, probe, obj)
    assert out.shape == (64, 64)


def test_multislice_cost_and_gradient(benchmark, kernel_setup):
    model, probe, obj, measured = kernel_setup
    result = benchmark(model.cost_and_gradient, probe, obj, measured)
    assert result.object_grad.shape == obj.shape


def test_fresnel_propagation(benchmark):
    prop = FresnelPropagator((128, 128), 10.0, 2.508, 125.0)
    rng = np.random.default_rng(1)
    field = rng.normal(size=(128, 128)) + 1j * rng.normal(size=(128, 128))
    out = benchmark(prop.forward, field)
    assert out.shape == (128, 128)


def test_centered_fft(benchmark):
    rng = np.random.default_rng(2)
    field = rng.normal(size=(256, 256)) + 1j * rng.normal(size=(256, 256))
    benchmark(fft2c, field)


def test_probe_synthesis(benchmark):
    spec = ProbeSpec(window=128, defocus_pm=10_000.0, pixel_size_pm=10.0)
    probe = benchmark(make_probe, spec)
    assert probe.window == 128
