"""Ablation: pass planner (APPP vs barrier vs all-reduce vs neighbour).

Numerically the first three are equivalent (tested in the suite); this
bench quantifies the *timing* differences the paper's Sec. V design
arguments predict, plus the message-volume advantage over all-reduce.
"""

import pytest

from repro.perfmodel.predictor import PerformancePredictor
from repro.physics.dataset import large_pbtio3_spec


@pytest.fixture(scope="module")
def predictor():
    return PerformancePredictor(large_pbtio3_spec())


def test_planner_makespans_at_462(benchmark, predictor, show):
    reports = {
        planner: predictor.gd_report(462, planner=planner)
        for planner in ("appp", "barrier", "allreduce")
    }
    benchmark.pedantic(
        predictor.gd_report, args=(462,), kwargs={"planner": "appp"},
        rounds=1, iterations=1,
    )
    lines = ["planner ablation, large dataset @ 462 GPUs (per iteration):"]
    for planner, rep in reports.items():
        lines.append(
            f"  {planner:>9}: makespan={rep.makespan_s:7.2f}s "
            f"compute={rep.mean('compute_s'):6.2f}s "
            f"wait={rep.mean('wait_s'):5.2f}s comm={rep.mean('comm_s'):6.3f}s"
        )
    show("\n".join(lines))

    assert reports["appp"].makespan_s <= reports["barrier"].makespan_s * 1.05
    assert reports["appp"].makespan_s < reports["allreduce"].makespan_s

    # The all-reduce moves the full volume; APPP only the overlaps.
    assert reports["allreduce"].message_bytes > reports["appp"].message_bytes


def test_appp_pipelining_gain_grows_with_mesh(predictor, show):
    """Barrier-vs-APPP gap as GPUs grow (cross-direction pipelining)."""
    gaps = {}
    for gpus in (54, 462):
        appp = predictor.gd_report(gpus, planner="appp").makespan_s
        barrier = predictor.gd_report(gpus, planner="barrier").makespan_s
        gaps[gpus] = barrier / appp
    show(f"barrier/appp makespan ratio: {gaps}")
    assert gaps[462] >= 1.0
