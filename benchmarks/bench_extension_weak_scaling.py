"""Extension: weak scaling (not in the paper).

The paper only reports strong scaling.  Weak scaling — fixed probes per
GPU, growing acquisitions — is the regime real facilities operate in
(bigger samples, more GPUs), so we add it: the gradient decomposition's
per-rank work is constant by construction, and its pass communication
grows only with tile perimeters, so modeled weak-scaling efficiency should
stay near (or above, thanks to shrinking memory pressure) 100%.
"""

import math

import pytest

from repro.parallel.topology import MeshLayout
from repro.perfmodel.predictor import PerformancePredictor
from repro.physics.dataset import DatasetSpec


def spec_for(probes_per_gpu: int, mesh: MeshLayout) -> DatasetSpec:
    """An acquisition sized so each GPU owns ``probes_per_gpu`` probes."""
    per_axis = int(round(math.sqrt(probes_per_gpu)))
    grid = (mesh.rows * per_axis, mesh.cols * per_axis)
    step = 16.0
    rows = int(1024 + step * (grid[0] - 1)) + 2
    cols = int(1024 + step * (grid[1] - 1)) + 2
    return DatasetSpec(
        name=f"weak-{mesh.n_ranks}",
        scan_grid=grid,
        object_shape=(rows, cols),
        n_slices=100,
        detector_px=1024,
        overlap_ratio=1.0 - step / 1024,
    )


def weak_scaling_series(probes_per_gpu=36, meshes=((2, 3), (4, 6), (8, 12))):
    rows = []
    for mesh_dims in meshes:
        mesh = MeshLayout(*mesh_dims)
        spec = spec_for(probes_per_gpu, mesh)
        predictor = PerformancePredictor(spec, iterations=100)
        report = predictor.gd_report(mesh.n_ranks)
        rows.append(
            {
                "gpus": mesh.n_ranks,
                "probes": spec.n_probes,
                "minutes": report.makespan_s * 100 / 60.0,
            }
        )
    return rows


def test_weak_scaling(benchmark, show):
    rows = benchmark.pedantic(weak_scaling_series, rounds=1, iterations=1)
    base = rows[0]["minutes"]
    lines = ["weak scaling (36 probes/GPU, 100 iterations):"]
    for r in rows:
        eff = 100.0 * base / r["minutes"]
        lines.append(
            f"  {r['gpus']:>4} GPUs, {r['probes']:>6} probes: "
            f"{r['minutes']:7.1f} min  weak efficiency {eff:5.1f}%"
        )
        r["eff"] = eff
    show("\n".join(lines))

    # Per-rank work is constant; runtime growth must stay within 35%
    # (pass chains lengthen with the mesh), i.e. efficiency >= 65%.
    assert all(r["eff"] > 65.0 for r in rows)


def test_weak_scaling_memory_flat(show):
    """Per-GPU memory stays ~constant under weak scaling — the memory
    scalability story of the paper, restated for growing problems."""
    from repro.perfmodel.memory_model import MemoryModel

    mems = []
    for mesh_dims in ((2, 3), (4, 6), (8, 12)):
        mesh = MeshLayout(*mesh_dims)
        spec = spec_for(36, mesh)
        predictor = PerformancePredictor(spec)
        decomp = predictor.gd_decomposition(mesh.n_ranks)
        mems.append(MemoryModel(spec).mean_bytes(decomp) / 1e9)
    show(f"per-GPU memory under weak scaling: {[round(m, 2) for m in mems]} GB")
    # Memory must not grow with the problem; it actually *shrinks* toward
    # the interior-tile asymptote (small meshes carry the un-scanned image
    # border on few ranks).
    assert mems[-1] <= mems[0]
    assert max(mems) < 3.0 * min(mems)
